// Unit tests for dependency graphs, strong safety (Definitions 8-10,
// Example 8.1 / Figure 3) and construction stratification.
#include <gtest/gtest.h>

#include "analysis/dependency_graph.h"
#include "analysis/safety.h"
#include "core/programs.h"
#include "parser/parser.h"

namespace seqlog {
namespace analysis {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  ast::Program Parse(std::string_view text) {
    Result<ast::Program> p = parser::ParseProgram(text, &symbols_, &pool_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return p.value();
  }
  SymbolTable symbols_;
  SequencePool pool_;
};

TEST_F(AnalysisTest, EdgesFollowDefinition8) {
  ast::Program p = Parse("p(X) :- q(X), r(X).\nq(X ++ X) :- r(X).");
  DependencyGraph g = DependencyGraph::Build(p);
  EXPECT_TRUE(g.HasEdge("p", "q"));
  EXPECT_TRUE(g.HasEdge("p", "r"));
  EXPECT_TRUE(g.HasEdge("q", "r"));
  EXPECT_FALSE(g.HasEdge("q", "p"));
  // Only the q clause is constructive.
  EXPECT_FALSE(g.HasConstructiveEdge("p", "q"));
  EXPECT_TRUE(g.HasConstructiveEdge("q", "r"));
}

TEST_F(AnalysisTest, Figure3ProgramP1) {
  // P1 has cycles (p <-> q) but no constructive cycle: the constructive
  // edges r -> a leave the cycle. Strongly safe.
  ast::Program p = Parse(programs::kP1);
  SafetyReport report = AnalyzeSafety(p);
  EXPECT_TRUE(report.strongly_safe);
  EXPECT_FALSE(report.non_constructive);
  EXPECT_FALSE(report.offending_edge.has_value());
  EXPECT_TRUE(report.graph.HasConstructiveEdge("r", "a"));
}

TEST_F(AnalysisTest, Figure3ProgramP2) {
  ast::Program p = Parse(programs::kP2);
  SafetyReport report = AnalyzeSafety(p);
  EXPECT_FALSE(report.strongly_safe);
  ASSERT_TRUE(report.offending_edge.has_value());
  EXPECT_EQ(report.offending_edge->first, "p");
  EXPECT_EQ(report.offending_edge->second, "p");
}

TEST_F(AnalysisTest, Figure3ProgramP3) {
  ast::Program p = Parse(programs::kP3);
  SafetyReport report = AnalyzeSafety(p);
  EXPECT_FALSE(report.strongly_safe);
  ASSERT_TRUE(report.offending_edge.has_value());
  // The constructive edge r -> p lies on the cycle q -> r -> p -> q.
  EXPECT_EQ(report.offending_edge->first, "r");
  EXPECT_EQ(report.offending_edge->second, "p");
}

TEST_F(AnalysisTest, NonConstructiveDetection) {
  EXPECT_TRUE(AnalyzeSafety(Parse("p(X[1:N]) :- r(X).")).non_constructive);
  EXPECT_FALSE(AnalyzeSafety(Parse("p(X ++ X) :- r(X).")).non_constructive);
  // Non-constructive programs are trivially strongly safe.
  EXPECT_TRUE(AnalyzeSafety(Parse("p(X) :- p(X[2:end]).")).strongly_safe);
}

TEST_F(AnalysisTest, SccsInDependencyOrder) {
  ast::Program p = Parse(
      "a(X) :- b(X).\n"
      "b(X) :- a(X), c(X).\n"
      "c(X) :- d(X).\n");
  DependencyGraph g = DependencyGraph::Build(p);
  auto sccs = g.StronglyConnectedComponents();
  // d before c before {a, b}.
  std::map<std::string, size_t> position;
  for (size_t i = 0; i < sccs.size(); ++i) {
    for (const std::string& v : sccs[i]) position[v] = i;
  }
  EXPECT_LT(position["d"], position["c"]);
  EXPECT_LT(position["c"], position["a"]);
  EXPECT_EQ(position["a"], position["b"]);
}

TEST_F(AnalysisTest, StrataSplitConstructiveClauses) {
  ast::Program p = Parse(
      "base(X[1:N]) :- r(X).\n"
      "big(X ++ Y) :- base(X), base(Y).\n"
      "big2(X) :- big(X).\n"
      "big2(X[1:N]) :- big2(X).\n");
  SafetyReport report = AnalyzeSafety(p);
  ASSERT_TRUE(report.strongly_safe);
  // Find the stratum defining "big": its constructive clause is there.
  bool found = false;
  for (const Stratum& s : report.strata) {
    if (std::find(s.predicates.begin(), s.predicates.end(), "big") !=
        s.predicates.end()) {
      EXPECT_EQ(s.constructive_clauses.size(), 1u);
      EXPECT_TRUE(s.nonconstructive_clauses.empty());
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AnalysisTest, DotRenderingMentionsConstructiveEdges) {
  ast::Program p = Parse(programs::kP3);
  DependencyGraph g = DependencyGraph::Build(p);
  std::string dot = g.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("constructive"), std::string::npos);
  EXPECT_NE(dot.find("\"r\" -> \"p\""), std::string::npos);
}

TEST_F(AnalysisTest, ProgramOrderFromRegistry) {
  ast::Program p = Parse("p(@square(X)) :- r(X).\nq(@copy(X)) :- r(X).");
  std::map<std::string, int> orders = {{"square", 2}, {"copy", 1}};
  Result<int> order = ProgramOrder(p, orders);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order.value(), 2);
  // Programs without transducers have order 0.
  EXPECT_EQ(ProgramOrder(Parse("p(X) :- r(X)."), {}).value(), 0);
  // Unknown machines are an error.
  EXPECT_FALSE(ProgramOrder(p, {{"square", 2}}).ok());
}

TEST_F(AnalysisTest, SuccessorsQuery) {
  ast::Program p = Parse("p(X) :- q(X), r(X).");
  DependencyGraph g = DependencyGraph::Build(p);
  EXPECT_EQ(g.Successors("p"), (std::vector<std::string>{"q", "r"}));
  EXPECT_TRUE(g.Successors("q").empty());
}

}  // namespace
}  // namespace analysis
}  // namespace seqlog
