// Property tests: the three evaluation strategies compute the same least
// fixpoint (naive evaluation is the executable definition of the
// T-operator; semi-naive and stratified must agree with it), across a
// corpus of programs and randomised databases.
#include <gtest/gtest.h>

#include <random>

#include "core/engine.h"
#include "core/programs.h"
#include "transducer/library.h"

namespace seqlog {
namespace {

struct Corpus {
  const char* name;
  const char* program;
  std::vector<std::string> predicates;  // to compare
  bool strongly_safe;                   // stratified applicable
};

const Corpus kCorpus[] = {
    {"suffixes", programs::kSuffixes, {"suffix"}, true},
    {"concat_pairs", programs::kConcatPairs, {"answer"}, true},
    {"abc_n", programs::kAbcN, {"answer"}, true},
    {"reverse", programs::kReverse, {"answer", "reverse"}, false},
    {"rep1", programs::kRep1, {"rep1"}, true},
    {"stratified", programs::kStratifiedDouble,
     {"double", "quadruple"}, true},
    {"transcribe", programs::kTranscribeSimulation, {"rnaseq"}, false},
    {"prefix_pairs",
     "pre(X[1:N]) :- r(X).\n"
     "pair(X, Y) :- pre(X), pre(Y), X != Y.\n",
     {"pre", "pair"},
     true},
    {"equality_chain",
     "p(X) :- r(X), X[1] = X[end].\n"
     "q(X[2:end-1]) :- p(X).\n",
     {"p", "q"},
     true},
};

class StrategyAgreement : public ::testing::TestWithParam<Corpus> {};

std::vector<std::string> RandomSequences(unsigned seed, size_t count,
                                         size_t max_len,
                                         std::string_view alphabet) {
  std::mt19937 rng(seed);
  std::vector<std::string> out;
  for (size_t i = 0; i < count; ++i) {
    std::uniform_int_distribution<size_t> len_dist(0, max_len);
    size_t len = len_dist(rng);
    std::string s;
    for (size_t j = 0; j < len; ++j) {
      s += alphabet[rng() % alphabet.size()];
    }
    out.push_back(std::move(s));
  }
  return out;
}

TEST_P(StrategyAgreement, NaiveSemiNaiveStratifiedAgree) {
  const Corpus& corpus = GetParam();
  for (unsigned seed : {1u, 2u, 3u}) {
    // The transcription program needs DNA; others get a generic alphabet.
    std::string_view alphabet =
        std::string_view(corpus.name) == "transcribe" ? "acgt" : "abc";
    std::vector<std::string> seqs = RandomSequences(seed, 3, 5, alphabet);

    std::map<eval::Strategy, std::map<std::string, std::vector<RenderedRow>>>
        results;
    std::vector<eval::Strategy> strategies = {eval::Strategy::kNaive,
                                              eval::Strategy::kSemiNaive};
    if (corpus.strongly_safe) {
      strategies.push_back(eval::Strategy::kStratified);
    }
    for (eval::Strategy strategy : strategies) {
      Engine engine;
      ASSERT_TRUE(engine.LoadProgram(corpus.program).ok());
      std::string base_pred =
          std::string_view(corpus.name) == "transcribe" ? "dnaseq" : "r";
      for (const std::string& s : seqs) {
        // The r/2 corpus entries are unary; reuse sequences.
        ASSERT_TRUE(engine.AddFact(base_pred, {s}).ok());
      }
      eval::EvalOptions options;
      options.strategy = strategy;
      options.limits.max_iterations = 2000;
      eval::EvalOutcome outcome = engine.Evaluate(options);
      ASSERT_TRUE(outcome.status.ok())
          << corpus.name << " seed=" << seed << " strategy="
          << static_cast<int>(strategy) << ": "
          << outcome.status.ToString();
      for (const std::string& pred : corpus.predicates) {
        auto rows = engine.Query(pred);
        ASSERT_TRUE(rows.ok()) << rows.status().ToString();
        results[strategy][pred] = rows.value();
      }
    }
    for (const std::string& pred : corpus.predicates) {
      EXPECT_EQ(results[eval::Strategy::kNaive][pred],
                results[eval::Strategy::kSemiNaive][pred])
          << corpus.name << "/" << pred << " seed=" << seed;
      if (corpus.strongly_safe) {
        EXPECT_EQ(results[eval::Strategy::kNaive][pred],
                  results[eval::Strategy::kStratified][pred])
            << corpus.name << "/" << pred << " seed=" << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, StrategyAgreement, ::testing::ValuesIn(kCorpus),
    [](const ::testing::TestParamInfo<Corpus>& info) {
      return std::string(info.param.name);
    });

// Reverse-of-reverse is the identity — checked through the engine, which
// exercises constructive recursion plus structural extraction.
class ReverseRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(ReverseRoundTrip, ReverseTwiceIsIdentity) {
  std::vector<std::string> seqs = RandomSequences(GetParam(), 4, 6, "01");
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(
      "rev(eps, eps) :- true.\n"
      "rev(X[1:N+1], X[N+1] ++ Y) :- r(X), rev(X[1:N], Y).\n"
      "revrev(Y, Z) :- r(Y), rev(Y, Z).\n").ok());
  std::set<std::string> unique_seqs(seqs.begin(), seqs.end());
  for (const std::string& s : unique_seqs) {
    ASSERT_TRUE(engine.AddFact("r", {s}).ok());
  }
  ASSERT_TRUE(engine.Evaluate().status.ok());
  auto rows = engine.Query("revrev");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), unique_seqs.size());
  for (const RenderedRow& row : rows.value()) {
    std::string reversed(row[0].rbegin(), row[0].rend());
    EXPECT_EQ(row[1], reversed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReverseRoundTrip,
                         ::testing::Values(11u, 22u, 33u, 44u));

// The T-operator is monotone (Lemma 2): evaluating over a superset
// database yields a superset model.
TEST(MonotonicityProperty, LargerDatabaseLargerModel) {
  for (unsigned seed : {5u, 6u}) {
    std::vector<std::string> seqs = RandomSequences(seed, 4, 4, "ab");
    Engine small;
    Engine large;
    ASSERT_TRUE(small.LoadProgram(programs::kSuffixes).ok());
    ASSERT_TRUE(large.LoadProgram(programs::kSuffixes).ok());
    for (size_t i = 0; i < seqs.size(); ++i) {
      ASSERT_TRUE(large.AddFact("r", {seqs[i]}).ok());
      if (i < seqs.size() / 2) {
        ASSERT_TRUE(small.AddFact("r", {seqs[i]}).ok());
      }
    }
    ASSERT_TRUE(small.Evaluate().status.ok());
    ASSERT_TRUE(large.Evaluate().status.ok());
    auto small_rows = small.Query("suffix");
    auto large_rows = large.Query("suffix");
    ASSERT_TRUE(small_rows.ok());
    ASSERT_TRUE(large_rows.ok());
    for (const RenderedRow& row : small_rows.value()) {
      EXPECT_NE(std::find(large_rows->begin(), large_rows->end(), row),
                large_rows->end());
    }
  }
}

}  // namespace
}  // namespace seqlog
