// Decision-procedure tests for the transducer compilation layer
// (src/transducer/determinize.h, fuse.h, Network::Compile):
//
//  - machines the procedures refuse carry the stable SL-E20x codes
//    (SL-E200 shape, SL-E201 not functional, SL-E202 not sequential,
//    SL-E203 state budget, SL-E204/205 fusion refusals), both in the
//    Status message and as coded Diagnostics when a report is passed;
//  - functional-but-not-sequential machines (expressible in the general
//    NfaTransducer IR: distinct final words keep diverging branches
//    alive) hit the bounded-delay / twinning cutoff;
//  - the paper's library machines round-trip: genome transcription
//    determinizes and fuses with translation unchanged in semantics,
//    and kReverse (order 2) is refused but the containing network still
//    answers identically through the interpreted fallback.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sequence/sequence_pool.h"
#include "sequence/symbol_table.h"
#include "transducer/builder.h"
#include "transducer/determinize.h"
#include "transducer/fuse.h"
#include "transducer/genome.h"
#include "transducer/library.h"
#include "transducer/network.h"
#include "transducer/nondet.h"

namespace seqlog {
namespace transducer {
namespace {

bool HasCode(const Status& status, const char* code) {
  return status.code() == StatusCode::kFailedPrecondition &&
         status.message().find(code) != std::string::npos;
}

bool ReportHasCode(const analysis::DiagnosticReport& report,
                   const char* code) {
  for (const analysis::Diagnostic& d : report.diagnostics()) {
    if (d.code == code) return true;
  }
  return false;
}

class TransducerCompileTest : public ::testing::Test {
 protected:
  Symbol Sym(std::string_view name) { return symbols_.Intern(name); }
  SeqId Seq(std::string_view text) {
    return pool_.FromChars(text, &symbols_);
  }
  std::string Render(SeqId id) { return pool_.Render(id, symbols_); }
  std::vector<Symbol> Alpha(std::string_view chars) {
    std::vector<Symbol> out;
    for (char c : chars) out.push_back(Sym(std::string_view(&c, 1)));
    return out;
  }

  SymbolTable symbols_;
  SequencePool pool_;
};

// ---------------------------------------------------------------------
// Determinization of Definition-7 machines.
// ---------------------------------------------------------------------

TEST_F(TransducerCompileTest, DeterminizesStateNondeterminism) {
  // Two echoing branches from the start state that only differ in their
  // future partiality: q1 accepts a*, q2 accepts ab*. Functional (all
  // surviving runs echo), but genuinely nondeterministic in states.
  const Symbol a = Sym("a");
  const Symbol b = Sym("b");
  NondetBuilder builder("branchy", 1);
  StateId q0 = builder.State("q0");
  StateId q1 = builder.State("q1");
  StateId q2 = builder.State("q2");
  builder.SetInitial(q0);
  builder.Add(q0, {SymPattern::Exact(a)}, q1, {HeadMove::kAdvance},
              NdOutput::Echo(0));
  builder.Add(q0, {SymPattern::Exact(a)}, q2, {HeadMove::kAdvance},
              NdOutput::Echo(0));
  builder.Add(q1, {SymPattern::Exact(a)}, q1, {HeadMove::kAdvance},
              NdOutput::Echo(0));
  builder.Add(q2, {SymPattern::Exact(b)}, q2, {HeadMove::kAdvance},
              NdOutput::Echo(0));
  auto machine = builder.Build();
  ASSERT_TRUE(machine.ok());

  DeterminizeStats stats;
  auto det = DeterminizeMachine(*machine.value(), Alpha("ab"), {}, &stats);
  ASSERT_TRUE(det.ok()) << det.status().message();
  EXPECT_EQ(stats.states_in, 3u);
  EXPECT_GE(stats.states_out, 2u);

  // Semantics agree with the breadth-first reference on a few inputs.
  for (std::string_view input : {"", "a", "aa", "ab", "abb", "aab", "b"}) {
    SeqId x = Seq(input);
    auto ref = machine.value()->RunAll(std::span<const SeqId>(&x, 1),
                                       &pool_);
    ASSERT_TRUE(ref.ok());
    auto got = det.value()->Apply(std::span<const SeqId>(&x, 1), &pool_);
    if (ref.value().empty()) {
      EXPECT_FALSE(got.ok()) << "input " << input;
    } else {
      ASSERT_EQ(ref.value().size(), 1u) << "input " << input;
      ASSERT_TRUE(got.ok()) << "input " << input;
      EXPECT_EQ(got.value(), ref.value()[0]) << "input " << input;
    }
  }
}

TEST_F(TransducerCompileTest, RefusesNonFunctionalWithStableCode) {
  // One input symbol, two outputs: classic guess machine.
  const Symbol a = Sym("a");
  const Symbol x = Sym("x");
  const Symbol y = Sym("y");
  NondetBuilder builder("guess", 1);
  StateId q0 = builder.State("q0");
  builder.SetInitial(q0);
  builder.Add(q0, {SymPattern::Exact(a)}, q0, {HeadMove::kAdvance},
              NdOutput::Emit(x));
  builder.Add(q0, {SymPattern::Exact(a)}, q0, {HeadMove::kAdvance},
              NdOutput::Emit(y));
  auto machine = builder.Build();
  ASSERT_TRUE(machine.ok());

  analysis::DiagnosticReport report;
  auto det =
      DeterminizeMachine(*machine.value(), Alpha("a"), {}, nullptr, &report);
  ASSERT_FALSE(det.ok());
  EXPECT_TRUE(HasCode(det.status(), kCodeNotFunctional))
      << det.status().message();
  EXPECT_TRUE(ReportHasCode(report, kCodeNotFunctional));
}

TEST_F(TransducerCompileTest, RefusesCopyOrSkipScatterAsNonFunctional) {
  // Every symbol is either copied or skipped: 2^n outputs per input.
  const Symbol a = Sym("a");
  NondetBuilder builder("scatter", 1);
  StateId q0 = builder.State("q0");
  builder.SetInitial(q0);
  builder.Add(q0, {SymPattern::Any()}, q0, {HeadMove::kAdvance},
              NdOutput::Echo(0));
  builder.Add(q0, {SymPattern::Any()}, q0, {HeadMove::kAdvance},
              NdOutput::Epsilon());
  auto machine = builder.Build();
  ASSERT_TRUE(machine.ok());
  (void)a;

  auto det = DeterminizeMachine(*machine.value(), Alpha("a"));
  ASSERT_FALSE(det.ok());
  EXPECT_TRUE(HasCode(det.status(), kCodeNotFunctional))
      << det.status().message();
}

TEST_F(TransducerCompileTest, RefusesUnsupportedShapes) {
  // Multi-input and order-2 machines are out of scope for the subset
  // construction (SL-E200), as are fusions over them (SL-E204).
  auto append = MakeAppend("app", 2);
  ASSERT_TRUE(append.ok());
  auto lifted = LiftDeterministic(*append.value(), Alpha("ab"));
  ASSERT_TRUE(lifted.ok());
  auto det = DeterminizeMachine(*lifted.value(), Alpha("ab"));
  ASSERT_FALSE(det.ok());
  EXPECT_TRUE(HasCode(det.status(), kCodeUnsupportedShape))
      << det.status().message();

  auto reverse = MakeReverse("rev", Alpha("ab"));
  ASSERT_TRUE(reverse.ok());
  auto single = CompileSingle(*reverse.value(), Alpha("ab"));
  ASSERT_FALSE(single.ok());
  EXPECT_TRUE(HasCode(single.status(), kCodeUnsupportedShape))
      << single.status().message();
}

TEST_F(TransducerCompileTest, StateBudgetRefusalHasStableCode) {
  // "a on the 3rd-from-last position": the subsets track every suffix
  // window, blowing up past a tiny budget. All-echo outputs keep the
  // machine functional, so the refusal is the budget, nothing else.
  const Symbol a = Sym("a");
  const Symbol b = Sym("b");
  NondetBuilder builder("suffix3", 1);
  StateId q0 = builder.State("q0");
  StateId q1 = builder.State("q1");
  StateId q2 = builder.State("q2");
  StateId q3 = builder.State("q3");
  builder.SetInitial(q0);
  for (Symbol s : {a, b}) {
    builder.Add(q0, {SymPattern::Exact(s)}, q0, {HeadMove::kAdvance},
                NdOutput::Echo(0));
  }
  builder.Add(q0, {SymPattern::Exact(a)}, q1, {HeadMove::kAdvance},
              NdOutput::Echo(0));
  for (Symbol s : {a, b}) {
    builder.Add(q1, {SymPattern::Exact(s)}, q2, {HeadMove::kAdvance},
                NdOutput::Echo(0));
    builder.Add(q2, {SymPattern::Exact(s)}, q3, {HeadMove::kAdvance},
                NdOutput::Echo(0));
  }
  auto machine = builder.Build();
  ASSERT_TRUE(machine.ok());

  DeterminizeOptions tight;
  tight.max_states = 4;
  analysis::DiagnosticReport report;
  auto det = DeterminizeMachine(*machine.value(), Alpha("ab"), tight,
                                nullptr, &report);
  ASSERT_FALSE(det.ok());
  EXPECT_TRUE(HasCode(det.status(), kCodeStateBudget))
      << det.status().message();
  EXPECT_TRUE(ReportHasCode(report, kCodeStateBudget));

  // With a real budget the same machine determinizes fine.
  auto ok = DeterminizeMachine(*machine.value(), Alpha("ab"));
  EXPECT_TRUE(ok.ok()) << ok.status().message();
}

// ---------------------------------------------------------------------
// The general IR: functional-but-not-sequential machines.
// ---------------------------------------------------------------------

// T(a^n b) = x^(n+1), T(a^n c) = y^(n+1): functional, but the two
// branches' outputs diverge unboundedly before the last symbol decides —
// the textbook twinning-property violation. (Definition-7 machines
// cannot express this: their prefix-closed, all-states-final semantics
// makes every functional machine sequential, which is why this lives in
// the NfaTransducer IR.)
NfaTransducer DivergingBranches(Symbol a, Symbol b, Symbol c, Symbol x,
                                Symbol y) {
  NfaTransducer nfa;
  nfa.name = "diverge";
  nfa.num_states = 4;  // 0 = start, 1 = x-branch, 2 = y-branch, 3 = final
  nfa.initial = 0;
  nfa.alphabet = {a, b, c};
  nfa.final_out.assign(4, std::nullopt);
  nfa.final_out[3] = std::vector<Symbol>{};
  nfa.rows = {
      {0, a, 1, {x}}, {0, a, 2, {y}},  // guess the branch
      {1, a, 1, {x}}, {2, a, 2, {y}},  // keep diverging
      {1, b, 3, {x}}, {2, c, 3, {y}},  // resolved only at the end
  };
  return nfa;
}

TEST_F(TransducerCompileTest, FunctionalButNotSequentialHitsDelayCutoff) {
  NfaTransducer nfa = DivergingBranches(Sym("a"), Sym("b"), Sym("c"),
                                        Sym("x"), Sym("y"));
  DeterminizeOptions options;
  options.max_delay = 8;
  analysis::DiagnosticReport report;
  auto det = Determinize(nfa, options, nullptr, &report);
  ASSERT_FALSE(det.ok());
  EXPECT_TRUE(HasCode(det.status(), kCodeNotSequential))
      << det.status().message();
  EXPECT_TRUE(ReportHasCode(report, kCodeNotSequential));
}

TEST_F(TransducerCompileTest, DelayWithinBoundDeterminizesWithFinalWords) {
  // Same shape, but the diverging run is cut off after one step by
  // making state 2 a dead end: trimming removes it and the remaining
  // machine is sequential with a one-symbol delay resolved by final
  // words. Checks the Mohri residual machinery end to end.
  const Symbol a = Sym("a");
  const Symbol b = Sym("b");
  const Symbol x = Sym("x");
  const Symbol y = Sym("y");
  NfaTransducer nfa;
  nfa.name = "delayed";
  nfa.num_states = 4;
  nfa.initial = 0;
  nfa.alphabet = {a, b};
  nfa.final_out.assign(4, std::nullopt);
  nfa.final_out[1] = std::vector<Symbol>{};
  nfa.final_out[3] = std::vector<Symbol>{};
  // On a: branch to 1 emitting x (final), or to 2 emitting y (not
  // final); 2 only reaches the final state 3 through a b (emitting
  // nothing). T(a) = x, T(ab) = y: the x-vs-y choice is delayed one
  // step and resolved by the determinized state's final word.
  nfa.rows = {
      {0, a, 1, {x}},
      {0, a, 2, {y}},
      {2, b, 3, {}},
  };
  DeterminizeStats stats;
  auto det = Determinize(nfa, {}, &stats);
  ASSERT_TRUE(det.ok()) << det.status().message();
  EXPECT_GE(stats.max_delay, 1u);
  EXPECT_EQ(det.value()->delay_bound(), stats.max_delay);

  std::vector<Symbol> out;
  ASSERT_TRUE(det.value()->Transduce(std::vector<Symbol>{a}, &out));
  EXPECT_EQ(out, std::vector<Symbol>{x});
  ASSERT_TRUE(det.value()->Transduce(std::vector<Symbol>{a, b}, &out));
  EXPECT_EQ(out, std::vector<Symbol>{y});
  EXPECT_FALSE(det.value()->Transduce(std::vector<Symbol>{b}, &out));
  EXPECT_FALSE(det.value()->Transduce(std::vector<Symbol>{a, a}, &out));
}

// ---------------------------------------------------------------------
// Library machines round-trip through determinize/fuse.
// ---------------------------------------------------------------------

TEST_F(TransducerCompileTest, TranscriptionCompilesUnchanged) {
  auto transcribe = MakeTranscribe("transcribe", &symbols_);
  ASSERT_TRUE(transcribe.ok());
  auto det = CompileSingle(*transcribe.value(), Alpha("acgt"));
  ASSERT_TRUE(det.ok()) << det.status().message();

  for (std::string_view dna : {"", "a", "tacgtt", "acgtacgtacgt", "gggg"}) {
    SeqId x = Seq(dna);
    auto want = transcribe.value()->Apply(std::span<const SeqId>(&x, 1),
                                          &pool_);
    auto got = det.value()->Apply(std::span<const SeqId>(&x, 1), &pool_);
    ASSERT_TRUE(want.ok() && got.ok()) << "dna " << dna;
    EXPECT_EQ(want.value(), got.value()) << "dna " << dna;
  }
  // Partiality is preserved: transcription is stuck on non-DNA input.
  SeqId bad = Seq("acgx");
  EXPECT_EQ(det.value()
                ->Apply(std::span<const SeqId>(&bad, 1), &pool_)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(TransducerCompileTest, GenomePipelineFusesUnchanged) {
  auto transcribe = MakeTranscribe("transcribe", &symbols_);
  auto translate = MakeTranslate("translate", &symbols_);
  ASSERT_TRUE(transcribe.ok() && translate.ok());

  FuseStats stats;
  auto fused = FuseChain(*transcribe.value(), *translate.value(),
                         Alpha("acgt"), {}, &stats);
  ASSERT_TRUE(fused.ok()) << fused.status().message();
  EXPECT_GT(stats.states_out, 0u);
  EXPECT_GT(stats.verified_inputs, 0u);

  // Fused protein == translate(transcribe(dna)) well beyond the lengths
  // the in-fusion equivalence check replayed.
  for (std::string_view dna :
       {"", "ta", "tac", "tacgtt", "tacgttacgtacgttacgtacgtacgtacg"}) {
    SeqId x = Seq(dna);
    auto mid = transcribe.value()->Apply(std::span<const SeqId>(&x, 1),
                                         &pool_);
    ASSERT_TRUE(mid.ok());
    const SeqId mid_id = mid.value();
    auto want = translate.value()->Apply(
        std::span<const SeqId>(&mid_id, 1), &pool_);
    auto got = fused.value()->Apply(std::span<const SeqId>(&x, 1), &pool_);
    ASSERT_TRUE(want.ok() && got.ok()) << "dna " << dna;
    EXPECT_EQ(want.value(), got.value()) << "dna " << dna;
  }
  // The paper's example: tacgtt -> (RNA augcaa) -> MQ.
  SeqId x = Seq("tacgtt");
  auto protein = fused.value()->Apply(std::span<const SeqId>(&x, 1), &pool_);
  ASSERT_TRUE(protein.ok());
  EXPECT_EQ(Render(protein.value()), "MQ");
}

TEST_F(TransducerCompileTest, FusionRefusesOrder2WithStableCode) {
  auto transcribe = MakeTranscribe("transcribe", &symbols_);
  auto reverse = MakeDnaReverse("rev", &symbols_);
  ASSERT_TRUE(transcribe.ok() && reverse.ok());
  analysis::DiagnosticReport report;
  auto fused = FuseChain(*transcribe.value(), *reverse.value(),
                         Alpha("acgt"), {}, nullptr, &report);
  ASSERT_FALSE(fused.ok());
  EXPECT_TRUE(HasCode(fused.status(), kCodeFusionUnsupported))
      << fused.status().message();
  EXPECT_TRUE(ReportHasCode(report, kCodeFusionUnsupported));
}

// ---------------------------------------------------------------------
// Network::Compile: fusion, per-node compilation, fallback.
// ---------------------------------------------------------------------

TEST_F(TransducerCompileTest, NetworkCompileFusesGenomeChain) {
  auto transcribe = MakeTranscribe("transcribe", &symbols_);
  auto translate = MakeTranslate("translate", &symbols_);
  ASSERT_TRUE(transcribe.ok() && translate.ok());
  TransducerNetwork net("rnapipe", 1);
  auto n0 = net.AddNode(transcribe.value(), {InputSource::FromNetwork(0)});
  ASSERT_TRUE(n0.ok());
  auto n1 = net.AddNode(translate.value(), {InputSource::FromNode(*n0)});
  ASSERT_TRUE(n1.ok());
  ASSERT_TRUE(net.SetOutput(*n1).ok());

  SeqId x = Seq("tacgttacg");
  auto before = net.Apply(std::span<const SeqId>(&x, 1), &pool_);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(net.Compile(Alpha("acgt")).ok());
  EXPECT_TRUE(net.compiled());
  EXPECT_EQ(net.compile_stats().fusion_hits, 1u);
  EXPECT_EQ(net.compile_stats().fusion_fallbacks, 0u);
  EXPECT_EQ(net.compile_stats().compiled_nodes, 1u);
  EXPECT_EQ(net.compile_stats().interpreted_nodes, 0u);
  EXPECT_EQ(net.compile_stats().machines_compiled, 1u);

  auto after = net.Apply(std::span<const SeqId>(&x, 1), &pool_);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before.value(), after.value());

  TransducerStats run_stats;
  net.CollectStats(&run_stats);
  EXPECT_GE(run_stats.compiled_node_runs, 1u);
}

TEST_F(TransducerCompileTest, NetworkCompileFallsBackOnOrder2Nodes) {
  // transcribe -> reverse: the chain cannot fuse (reverse is order 2)
  // and reverse cannot compile alone, so the network falls back to the
  // interpreted run — with identical semantics before and after.
  auto transcribe = MakeTranscribe("transcribe", &symbols_);
  auto reverse = MakeDnaReverse("rev", &symbols_);
  ASSERT_TRUE(transcribe.ok() && reverse.ok());
  // reverse is built over DNA; transcription emits RNA, so reverse here
  // gets the RNA alphabet instead.
  auto rna_reverse = MakeReverse("rna_rev", Alpha("acgu"));
  ASSERT_TRUE(rna_reverse.ok());

  TransducerNetwork net("revpipe", 1);
  auto n0 = net.AddNode(transcribe.value(), {InputSource::FromNetwork(0)});
  ASSERT_TRUE(n0.ok());
  auto n1 = net.AddNode(rna_reverse.value(), {InputSource::FromNode(*n0)});
  ASSERT_TRUE(n1.ok());
  ASSERT_TRUE(net.SetOutput(*n1).ok());

  SeqId x = Seq("tacgtt");
  auto before = net.Apply(std::span<const SeqId>(&x, 1), &pool_);
  ASSERT_TRUE(before.ok());

  analysis::DiagnosticReport report;
  ASSERT_TRUE(net.Compile(Alpha("acgt"), {}, &report).ok());
  EXPECT_EQ(net.compile_stats().fusion_hits, 0u);
  EXPECT_EQ(net.compile_stats().fusion_fallbacks, 1u);
  // transcribe still compiles alone; reverse stays interpreted.
  EXPECT_EQ(net.compile_stats().compiled_nodes, 1u);
  EXPECT_EQ(net.compile_stats().interpreted_nodes, 1u);
  EXPECT_TRUE(ReportHasCode(report, kCodeFusionUnsupported));

  auto after = net.Apply(std::span<const SeqId>(&x, 1), &pool_);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before.value(), after.value());
}

TEST_F(TransducerCompileTest, NetworkCompileKeepsFanOutInterpretedChainsApart) {
  // The intermediate output feeds two consumers: fusing would lose the
  // materialised sequence, so the planner must not fuse — but both
  // consumers still compile individually.
  auto transcribe = MakeTranscribe("transcribe", &symbols_);
  auto id = MakeIdentity("copy");
  auto append = MakeAppend("app", 2);
  ASSERT_TRUE(transcribe.ok() && id.ok() && append.ok());

  TransducerNetwork net("fanout", 1);
  auto n0 = net.AddNode(transcribe.value(), {InputSource::FromNetwork(0)});
  ASSERT_TRUE(n0.ok());
  auto n1 = net.AddNode(id.value(), {InputSource::FromNode(*n0)});
  ASSERT_TRUE(n1.ok());
  auto n2 = net.AddNode(append.value(), {InputSource::FromNode(*n0),
                                         InputSource::FromNode(*n1)});
  ASSERT_TRUE(n2.ok());
  ASSERT_TRUE(net.SetOutput(*n2).ok());

  SeqId x = Seq("acgt");
  auto before = net.Apply(std::span<const SeqId>(&x, 1), &pool_);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(net.Compile(Alpha("acgt")).ok());
  EXPECT_EQ(net.compile_stats().fusion_hits, 0u);
  // transcribe and copy compile; append (multi-input) stays interpreted.
  EXPECT_EQ(net.compile_stats().compiled_nodes, 2u);
  EXPECT_EQ(net.compile_stats().interpreted_nodes, 1u);

  auto after = net.Apply(std::span<const SeqId>(&x, 1), &pool_);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before.value(), after.value());
}

}  // namespace
}  // namespace transducer
}  // namespace seqlog
