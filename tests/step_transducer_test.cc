// Property tests for the TM-step transducer (the order-1 machine at the
// heart of the Theorem 5 network): its output on (fuel, fuel, config)
// must equal tm::StepConfig for every reachable configuration.
#include <gtest/gtest.h>

#include "tm/machines.h"
#include "tm/step_transducer.h"
#include "tm/turing.h"

namespace seqlog {
namespace tm {
namespace {

class StepTransducerTest : public ::testing::TestWithParam<const char*> {
 protected:
  TuringMachine Machine() {
    std::string name = GetParam();
    if (name == "bit_flip") return MakeBitFlip(&symbols_);
    if (name == "binary_increment") return MakeBinaryIncrement(&symbols_);
    return MakeUnaryDouble(&symbols_);
  }
  std::vector<Symbol> Chars(std::string_view text) {
    std::vector<Symbol> out;
    for (char c : text) {
      out.push_back(symbols_.Intern(std::string_view(&c, 1)));
    }
    return out;
  }
  SymbolTable symbols_;
  SequencePool pool_;
};

TEST_P(StepTransducerTest, AgreesWithStepConfigAlongFullRuns) {
  TuringMachine m = Machine();
  auto step = MakeStepTransducer(m, "step");
  ASSERT_TRUE(step.ok()) << step.status().ToString();
  EXPECT_EQ((*step)->Order(), 1);
  EXPECT_EQ((*step)->NumInputs(), 3u);

  std::vector<std::string> inputs;
  if (std::string(GetParam()) == "unary_double") {
    inputs = {"1", "11", "111", "1111"};
  } else {
    inputs = {"0", "01", "010", "0110", "0101"};
  }

  for (const std::string& in : inputs) {
    // Fuel tapes sized like the driver would: a long counter and the
    // initial configuration.
    SeqId fuel1 = pool_.Intern(Chars(std::string(256, '1')));
    std::vector<Symbol> config = InitialConfig(m, Chars(in));
    SeqId fuel2 = pool_.Intern(config);

    for (int step_no = 0; step_no < 200; ++step_no) {
      std::vector<Symbol> expected = StepConfig(m, config);
      SeqId config_id = pool_.Intern(config);
      auto out = (*step)->Apply(
          std::vector<SeqId>{fuel1, fuel2, config_id}, &pool_);
      ASSERT_TRUE(out.ok())
          << GetParam() << " input=" << in << " step=" << step_no << ": "
          << out.status().ToString();
      SeqView got = pool_.View(out.value());
      ASSERT_EQ(std::vector<Symbol>(got.begin(), got.end()), expected)
          << GetParam() << " input=" << in << " step=" << step_no;
      if (expected == config) break;  // halted: fixed point reached
      config = expected;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Machines, StepTransducerTest,
                         ::testing::Values("bit_flip", "binary_increment",
                                           "unary_double"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(StepTransducerBasics, HaltedConfigIsFixedPoint) {
  SymbolTable symbols;
  SequencePool pool;
  TuringMachine m = MakeBitFlip(&symbols);
  auto step = MakeStepTransducer(m, "step");
  ASSERT_TRUE(step.ok());
  // Run to completion, then apply the step transducer thrice more.
  std::vector<Symbol> in = {symbols.Intern("0"), symbols.Intern("1")};
  auto direct = RunMachine(m, in, 100);
  ASSERT_TRUE(direct.ok());
  std::vector<Symbol> halted =
      EncodeConfig(m, direct->tape, direct->head, direct->final_state);
  SeqId fuel = pool.FromChars("11111111", &symbols);
  SeqId config = pool.Intern(halted);
  for (int i = 0; i < 3; ++i) {
    auto out = (*step)->Apply(std::vector<SeqId>{fuel, fuel, config},
                              &pool);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.value(), config);
  }
}

}  // namespace
}  // namespace tm
}  // namespace seqlog
