// Golden tests for the lint passes (analysis/lint.h): one per diagnostic
// code, pinning code + location + message, plus the property test that
// the paper's strongly-safe example programs lint error-free while the
// not-strongly-safe ones produce exactly the SL-E010 cycle diagnostic.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/lint.h"
#include "core/engine.h"
#include "core/programs.h"
#include "parser/parser.h"

namespace seqlog {
namespace analysis {
namespace {

using ::testing::Test;

class LintTest : public Test {
 protected:
  DiagnosticReport Run(std::string_view source, LintOptions options = {}) {
    return LintSource(source, &symbols_, &pool_, options);
  }

  DiagnosticReport RunWithEdb(std::string_view source,
                              std::initializer_list<const char*> edb) {
    LintOptions options;
    for (const char* p : edb) options.edb_predicates.insert(p);
    return LintSource(source, &symbols_, &pool_, options);
  }

  static std::vector<Diagnostic> WithCode(const DiagnosticReport& report,
                                          std::string_view code) {
    std::vector<Diagnostic> out;
    for (const Diagnostic& d : report.diagnostics()) {
      if (d.code == code) out.push_back(d);
    }
    return out;
  }

  static std::vector<std::string> Codes(const DiagnosticReport& report) {
    std::vector<std::string> out;
    for (const Diagnostic& d : report.diagnostics()) out.push_back(d.code);
    return out;
  }

  SymbolTable symbols_;
  SequencePool pool_;
};

// ------------------------------------------------------------ pass list

TEST_F(LintTest, PassListIsStable) {
  const std::vector<LintPassInfo>& passes = LintPasses();
  std::vector<std::string_view> names;
  for (const LintPassInfo& p : passes) names.push_back(p.name);
  EXPECT_EQ(names, (std::vector<std::string_view>{
                       "validate", "strong-safety", "variables", "predicates",
                       "clauses", "goal-bindability"}));
}

// ----------------------------------------------------- validate (SL-Exx)

TEST_F(LintTest, ParseErrorIsE001WithParserPosition) {
  DiagnosticReport r = Run("p(X :- q(X).\n");
  ASSERT_EQ(r.size(), 1u);
  const Diagnostic& d = r.diagnostics()[0];
  EXPECT_EQ(d.code, "SL-E001");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.loc, (ast::SourceLoc{1, 5}));  // the ':-' that ends the atom
}

TEST_F(LintTest, ConstructiveBodyIsE003AtTheTerm) {
  DiagnosticReport r = RunWithEdb("p(X) :- q(X ++ a).\n", {"q"});
  std::vector<Diagnostic> e = WithCode(r, "SL-E003");
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0].loc, (ast::SourceLoc{1, 11}));  // the 'X' of 'X ++ a'
  EXPECT_EQ(e[0].predicate, "q");  // the atom holding the term
}

TEST_F(LintTest, ArityClashIsE006AtTheSecondUse) {
  DiagnosticReport r = RunWithEdb("p(a) :- q(a).\np(a, b) :- q(b).\n", {"q"});
  std::vector<Diagnostic> e = WithCode(r, "SL-E006");
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0].loc, (ast::SourceLoc{2, 1}));
  EXPECT_EQ(e[0].predicate, "p");
  EXPECT_NE(e[0].message.find("arity"), std::string::npos);
}

TEST_F(LintTest, VariableRoleClashIsE007AtTheVariable) {
  DiagnosticReport r = RunWithEdb("p(N, X) :- q(X), X[N:end] = X.\n", {"q"});
  std::vector<Diagnostic> e = WithCode(r, "SL-E007");
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0].loc, (ast::SourceLoc{1, 3}));  // first use of N
  EXPECT_NE(e[0].message.find("'N'"), std::string::npos);
}

// ------------------------------------------------- strong safety (E010)

TEST_F(LintTest, ConstructiveSelfLoopIsE010WithRenderedCycle) {
  DiagnosticReport r =
      RunWithEdb("rep(X) :- r(X).\nrep(X ++ X) :- rep(X).\n", {"r"});
  std::vector<Diagnostic> e = WithCode(r, "SL-E010");
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0].severity, Severity::kError);
  // Located at the constructive clause, not the program start.
  EXPECT_EQ(e[0].loc, (ast::SourceLoc{2, 1}));
  EXPECT_EQ(e[0].predicate, "rep");
  EXPECT_NE(e[0].message.find("rep -> rep"), std::string::npos);
  EXPECT_NE(e[0].message.find("Definition 10"), std::string::npos);
}

TEST_F(LintTest, MultiNodeCycleRendersTheFullPath) {
  // Example 8.1 program P3: the cycle runs q -> r -> p -> q; the witness
  // edge is the constructive one (r -> p), so the rendered path starts
  // at r and closes back on it.
  DiagnosticReport r = Run(programs::kP3);
  std::vector<Diagnostic> e = WithCode(r, "SL-E010");
  ASSERT_EQ(e.size(), 1u);
  EXPECT_NE(e[0].message.find("r -> p -> q -> r"), std::string::npos);
  EXPECT_EQ(e[0].loc, (ast::SourceLoc{2, 1}));  // the @t clause
}

TEST_F(LintTest, InfoFindingsAreOptIn) {
  const char kSafe[] = "suffix(X) :- r(X).\nsuffix(X[2:end]) :- suffix(X).\n";
  DiagnosticReport quiet = RunWithEdb(kSafe, {"r"});
  EXPECT_TRUE(WithCode(quiet, "SL-I060").empty());
  EXPECT_TRUE(WithCode(quiet, "SL-I061").empty());

  LintOptions options;
  options.edb_predicates.insert("r");
  options.include_info = true;
  DiagnosticReport chatty = Run(kSafe, options);
  EXPECT_EQ(WithCode(chatty, "SL-I060").size(), 1u);  // non-constructive
  std::vector<Diagnostic> safe = WithCode(chatty, "SL-I061");
  ASSERT_EQ(safe.size(), 1u);
  EXPECT_EQ(safe[0].severity, Severity::kInfo);
  EXPECT_NE(safe[0].message.find("strongly safe"), std::string::npos);
}

// ------------------------------------------------- variables (W020/W021)

TEST_F(LintTest, UnguardedVariableIsW020AtItsFirstUse) {
  DiagnosticReport r = RunWithEdb("p(X ++ Y) :- q(X).\n", {"q"});
  std::vector<Diagnostic> w = WithCode(r, "SL-W020");
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].severity, Severity::kWarning);  // legal under Section 4
  EXPECT_EQ(w[0].loc, (ast::SourceLoc{1, 8}));   // the Y in the head
  EXPECT_NE(w[0].message.find("'Y'"), std::string::npos);
  EXPECT_NE(w[0].message.find("extended active domain"), std::string::npos);
}

TEST_F(LintTest, SingletonVariableIsW021AndUnderscoreOptsOut) {
  DiagnosticReport r = RunWithEdb("p(X) :- q(X, Y).\n", {"q"});
  std::vector<Diagnostic> w = WithCode(r, "SL-W021");
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].loc, (ast::SourceLoc{1, 14}));
  EXPECT_NE(w[0].message.find("'Y'"), std::string::npos);

  DiagnosticReport silenced = RunWithEdb("p(X) :- q(X, _Y).\n", {"q"});
  EXPECT_TRUE(WithCode(silenced, "SL-W021").empty());
}

// ------------------------------------------------ predicates (W030/W031)

TEST_F(LintTest, UndefinedPredicateIsW030AtTheAtom) {
  DiagnosticReport r = Run("p(X) :- q(X).\n");
  std::vector<Diagnostic> w = WithCode(r, "SL-W030");
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].loc, (ast::SourceLoc{1, 9}));
  EXPECT_EQ(w[0].predicate, "q");
}

TEST_F(LintTest, EdbDeclarationSuppressesW030) {
  DiagnosticReport r = RunWithEdb("p(X) :- q(X).\n", {"q"});
  EXPECT_TRUE(WithCode(r, "SL-W030").empty());
}

TEST_F(LintTest, GoalSplitsUnusedFromUnreachable) {
  // 'helper' is referenced (by 'uses') but unreachable from the goal:
  // W050 per clause. 'uses' is never referenced anywhere: W031 once.
  LintOptions options;
  options.edb_predicates.insert("a");
  options.goal = parser::ParseGoal("ans(X)", &symbols_, &pool_).value();
  DiagnosticReport r = Run(
      "ans(X) :- a(X).\nhelper(X) :- a(X).\nuses(X) :- helper(X).\n",
      options);
  std::vector<Diagnostic> unreachable = WithCode(r, "SL-W050");
  ASSERT_EQ(unreachable.size(), 1u);
  EXPECT_EQ(unreachable[0].loc, (ast::SourceLoc{2, 1}));
  EXPECT_EQ(unreachable[0].predicate, "helper");
  std::vector<Diagnostic> unused = WithCode(r, "SL-W031");
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0].loc, (ast::SourceLoc{3, 1}));
  EXPECT_EQ(unused[0].predicate, "uses");
}

// --------------------------------------------------- clauses (W040/W041)

TEST_F(LintTest, DuplicateClauseIsW040AtTheLaterCopy) {
  DiagnosticReport r =
      RunWithEdb("p(X) :- q(X).\np(X) :- q(X).\n", {"q"});
  std::vector<Diagnostic> w = WithCode(r, "SL-W040");
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].loc, (ast::SourceLoc{2, 1}));
  EXPECT_NE(w[0].message.find("clause 1"), std::string::npos);
}

TEST_F(LintTest, SubsumedClauseIsW041) {
  // Same head, strictly more body literals than clause 1: whatever the
  // longer clause derives, the shorter one already does.
  DiagnosticReport r =
      RunWithEdb("p(X) :- q(X).\np(X) :- q(X), r(X).\n", {"q", "r"});
  std::vector<Diagnostic> w = WithCode(r, "SL-W041");
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].loc, (ast::SourceLoc{2, 1}));
  EXPECT_NE(w[0].message.find("subsumed"), std::string::npos);
}

// ---------------------------------------------- goal bindability (W051)

TEST_F(LintTest, UnbindableGoalIsW051AtTheBlockingHeadTerm) {
  LintOptions options;
  options.edb_predicates = {"a", "b"};
  options.goal = parser::ParseGoal("ans(ab)", &symbols_, &pool_).value();
  DiagnosticReport r = Run("ans(X ++ Y) :- a(X), b(Y).\n", options);
  std::vector<Diagnostic> w = WithCode(r, "SL-W051");
  ASSERT_EQ(w.size(), 1u);
  // Points at the constructive head term that forces the demotion.
  EXPECT_EQ(w[0].loc, (ast::SourceLoc{1, 5}));
  EXPECT_EQ(w[0].predicate, "ans");
  EXPECT_NE(w[0].message.find("post-filter"), std::string::npos);
}

TEST_F(LintTest, BindableGoalProducesNoW051) {
  LintOptions options;
  options.edb_predicates = {"r"};
  options.goal = parser::ParseGoal("suffix(abc)", &symbols_, &pool_).value();
  DiagnosticReport r =
      Run("suffix(X) :- r(X).\nsuffix(X[2:end]) :- suffix(X).\n", options);
  EXPECT_TRUE(WithCode(r, "SL-W051").empty());
}

// ------------------------------------------------------------- renderers

TEST_F(LintTest, RenderTextIsCompilerStyleAndSorted) {
  DiagnosticReport r = RunWithEdb(
      "p(X) :- q(X).\np(X ++ Y) :- q(X).\n", {"q"});
  std::string text = r.RenderText("prog.sl");
  // Line-2 findings follow line-1 findings, and the summary line counts.
  EXPECT_NE(text.find("prog.sl:2:8: warning[SL-W020]"), std::string::npos);
  EXPECT_NE(text.find("warning(s)"), std::string::npos);
  std::vector<std::string> codes = Codes(r);
  EXPECT_TRUE(std::is_sorted(
      r.diagnostics().begin(), r.diagnostics().end(),
      [](const Diagnostic& a, const Diagnostic& b) {
        return a.loc < b.loc || (a.loc == b.loc && a.code < b.code);
      }));
}

TEST_F(LintTest, RenderJsonEscapesAndCounts) {
  DiagnosticReport r;
  r.Add("SL-E001", Severity::kError, {1, 2}, "p",
        "a \"quoted\"\nmessage");
  std::string json = r.RenderJson("x.sl");
  EXPECT_NE(json.find("\"code\": \"SL-E001\""), std::string::npos);
  EXPECT_NE(json.find("a \\\"quoted\\\"\\nmessage"), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
}

// ------------------------------------------- paper-program property test

struct PaperProgram {
  const char* name;
  const char* source;
  bool strongly_safe;
};

TEST_F(LintTest, PaperExamplesLintAsThePaperClassifiesThem) {
  // The paper's own classification (Examples 1.1-1.6, 5.1, 7.1/7.2, 8.1):
  // strongly-safe programs must lint with zero errors; the rest must
  // produce exactly one error, and it must be the Definition 10 cycle.
  const PaperProgram programs[] = {
      {"kSuffixes", programs::kSuffixes, true},
      {"kConcatPairs", programs::kConcatPairs, true},
      {"kAbcN", programs::kAbcN, true},
      {"kReverse", programs::kReverse, false},
      {"kRep1", programs::kRep1, true},
      {"kRep2", programs::kRep2, false},
      {"kEcho", programs::kEcho, false},
      {"kStratifiedDouble", programs::kStratifiedDouble, true},
      {"kP1", programs::kP1, true},
      {"kP2", programs::kP2, false},
      {"kP3", programs::kP3, false},
      {"kGenomePipeline", programs::kGenomePipeline, true},
      {"kTranscribeSimulation", programs::kTranscribeSimulation, false},
  };
  for (const PaperProgram& p : programs) {
    SymbolTable symbols;
    SequencePool pool;
    LintOptions options;
    options.edb_predicates = {"r", "a", "dnaseq", "trans"};
    DiagnosticReport report = LintSource(p.source, &symbols, &pool, options);
    if (p.strongly_safe) {
      EXPECT_EQ(report.ErrorCount(), 0u)
          << p.name << ":\n" << report.RenderText(p.name);
    } else {
      std::vector<Diagnostic> errors = report.WithSeverity(Severity::kError);
      ASSERT_EQ(errors.size(), 1u)
          << p.name << ":\n" << report.RenderText(p.name);
      EXPECT_EQ(errors[0].code, "SL-E010") << p.name;
      EXPECT_TRUE(errors[0].loc.valid()) << p.name;
    }
  }
}

// ------------------------------------------------------ engine surfaces

TEST_F(LintTest, EngineLoadProgramAccumulatesWarnings) {
  Engine engine;
  // 'q' is body-only, so the engine treats it as extensional (AddFact);
  // the unguarded Y must still surface through Engine::diagnostics().
  ASSERT_TRUE(engine.LoadProgram("p(X ++ Y) :- q(X).\n").ok());
  const DiagnosticReport& report = engine.diagnostics();
  EXPECT_FALSE(report.HasErrors());
  ASSERT_EQ(report.WithSeverity(Severity::kWarning).size(), 2u);  // W020+W021
  EXPECT_EQ(report.diagnostics()[0].code, "SL-W020");
}

TEST_F(LintTest, CleanProgramLoadsWithEmptyDiagnostics) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kStratifiedDouble).ok());
  EXPECT_TRUE(engine.diagnostics().empty())
      << engine.diagnostics().RenderText();
}

TEST_F(LintTest, PrepareSurfacesW051AsWarnings) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("ans(X ++ Y) :- a(X), b(Y).\n").ok());
  ASSERT_TRUE(engine.AddFact("a", {"x"}).ok());
  ASSERT_TRUE(engine.AddFact("b", {"y"}).ok());
  Result<PreparedQuery> prepared = engine.Prepare("ans($1)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  const std::vector<Diagnostic>& warnings = prepared.value().warnings();
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].code, "SL-W051");

  Engine clean;
  ASSERT_TRUE(clean.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(clean.AddFact("r", {"abc"}).ok());
  Result<PreparedQuery> ok = clean.Prepare("suffix($1)");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(ok.value().warnings().empty());
}

}  // namespace
}  // namespace analysis
}  // namespace seqlog
