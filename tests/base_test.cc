// Unit tests for the base module: Status, Result, string helpers, hash.
#include <gtest/gtest.h>

#include "base/hash.h"
#include "base/result.h"
#include "base/status.h"
#include "base/string_util.h"

namespace seqlog {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arity");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad arity");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "not_found");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition),
            "failed_precondition");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "resource_exhausted");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfRange), "out_of_range");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnimplemented), "unimplemented");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "internal");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::Ok();
}

Status Propagates(int x) {
  SEQLOG_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_EQ(Propagates(-1).code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SEQLOG_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> q = Quarter(8);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value(), 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(3).ok());
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringUtilTest, StrCat) {
  EXPECT_EQ(StrCat("x=", 42, ", y=", 1.5), "x=42, y=1.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(HashTest, SpanHashDistinguishesContent) {
  std::vector<uint32_t> a = {1, 2, 3};
  std::vector<uint32_t> b = {1, 2, 4};
  std::vector<uint32_t> c = {1, 2, 3};
  EXPECT_NE(HashSpan<uint32_t>(a), HashSpan<uint32_t>(b));
  EXPECT_EQ(HashSpan<uint32_t>(a), HashSpan<uint32_t>(c));
}

TEST(HashTest, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2),
            HashCombine(HashCombine(0, 2), 1));
}

}  // namespace
}  // namespace seqlog
