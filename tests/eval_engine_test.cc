// Unit tests for the evaluation engine: planning, substitution semantics
// (Section 3.2), strategies, budgets, statistics.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "eval/clause_plan.h"
#include "transducer/library.h"

namespace seqlog {
namespace {

using RowList = std::vector<RenderedRow>;

RowList RunQuery(std::string_view program,
            const std::vector<std::pair<std::string, std::vector<std::string>>>&
                facts,
            std::string_view query,
            eval::Strategy strategy = eval::Strategy::kSemiNaive) {
  Engine engine;
  Status s = engine.LoadProgram(program);
  EXPECT_TRUE(s.ok()) << s.ToString();
  for (const auto& [pred, args] : facts) {
    EXPECT_TRUE(engine.AddFact(pred, args).ok());
  }
  eval::EvalOptions options;
  options.strategy = strategy;
  eval::EvalOutcome outcome = engine.Evaluate(options);
  EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  Result<RowList> rows = engine.Query(query);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  return rows.ok() ? rows.value() : RowList{};
}

TEST(EvalEngine, PlainDatalogJoin) {
  EXPECT_EQ(RunQuery("path(X, Y) :- edge(X, Y).\n"
                "path(X, Z) :- edge(X, Y), path(Y, Z).",
                {{"edge", {"a", "b"}}, {"edge", {"b", "c"}},
                 {"edge", {"c", "d"}}},
                "path"),
            (RowList{{"a", "b"}, {"a", "c"}, {"a", "d"}, {"b", "c"},
                     {"b", "d"}, {"c", "d"}}));
}

TEST(EvalEngine, UndefinedIndexTermsDeriveNothing) {
  // Section 3.2 definedness: theta(S[n1:n2]) is defined iff
  // 1 <= n1 <= n2+1 <= len+1. For X = "ab", X[4:end] = X[4:2] violates
  // n1 <= n2+1; the substitution is undefined and no head is derived.
  EXPECT_EQ(RunQuery("p(X[4:end]) :- r(X).", {{"r", {"ab"}}}, "p"),
            (RowList{}));
  // X[1:4] violates n2+1 <= len+1 (4+1 > 2+1).
  EXPECT_EQ(RunQuery("p(X[1:4]) :- r(X).", {{"r", {"ab"}}}, "p"),
            (RowList{}));
  // ...but [3:2] satisfies n1 = n2+1 and is the empty sequence, exactly
  // as uvwxy[3:2] = eps in the paper's substitution table.
  EXPECT_EQ(RunQuery("p(X[3:2]) :- r(X).", {{"r", {"ab"}}}, "p"),
            (RowList{{""}}));
  EXPECT_EQ(RunQuery("p(X[3:end]) :- r(X).", {{"r", {"ab"}}}, "p"),
            (RowList{{""}}));
}

TEST(EvalEngine, PointIndexing) {
  EXPECT_EQ(RunQuery("first(X[1]) :- r(X).\nlast(X[end]) :- r(X).",
                {{"r", {"abc"}}}, "first"),
            (RowList{{"a"}}));
  EXPECT_EQ(RunQuery("first(X[1]) :- r(X).\nlast(X[end]) :- r(X).",
                {{"r", {"abc"}}}, "last"),
            (RowList{{"c"}}));
}

TEST(EvalEngine, IndexArithmetic) {
  EXPECT_EQ(RunQuery("p(X[N+1:end-1]) :- r(X), q(X[1:N]).",
                {{"r", {"abcde"}}, {"q", {"ab"}}}, "p"),
            (RowList{{"cd"}}));
}

TEST(EvalEngine, EqualityBindsWithinDomain) {
  // Y = X[2:3] binds Y to a subsequence (always in the domain).
  EXPECT_EQ(RunQuery("p(Y) :- r(X), Y = X[2:3].", {{"r", {"abcd"}}}, "p"),
            (RowList{{"bc"}}));
}

TEST(EvalEngine, EqualityWithConstantOutsideDomainFails) {
  // Substitutions range over the extended active domain (Definition 1):
  // "xyz" is not in it, so Y can never be bound to it.
  EXPECT_EQ(RunQuery("p(Y) :- r(X), Y = xyz.", {{"r", {"ab"}}}, "p"),
            (RowList{}));
  // A constant inside the domain works.
  EXPECT_EQ(RunQuery("p(Y) :- r(X), Y = ab.", {{"r", {"ab"}}}, "p"),
            (RowList{{"ab"}}));
}

TEST(EvalEngine, InequalityFilters) {
  EXPECT_EQ(RunQuery("p(X, Y) :- r(X), r(Y), X != Y.",
                {{"r", {"a"}}, {"r", {"b"}}}, "p"),
            (RowList{{"a", "b"}, {"b", "a"}}));
}

TEST(EvalEngine, ConstantsInBodyMatch) {
  EXPECT_EQ(RunQuery("p(X) :- r(X, abc).",
                {{"r", {"u", "abc"}}, {"r", {"v", "abd"}}}, "p"),
            (RowList{{"u"}}));
}

TEST(EvalEngine, HeadConstantsDerive) {
  EXPECT_EQ(RunQuery("p(hello) :- r(X).", {{"r", {"x"}}}, "p"),
            (RowList{{"hello"}}));
}

TEST(EvalEngine, RepeatedVariableInLiteral) {
  EXPECT_EQ(RunQuery("p(X) :- r(X, X).",
                {{"r", {"a", "a"}}, {"r", {"a", "b"}}}, "p"),
            (RowList{{"a"}}));
}

TEST(EvalEngine, UnguardedHeadVariableEnumeratesDomain) {
  // q(Y) :- r(X): Y ranges over the whole extended active domain.
  RowList rows = RunQuery("q(Y) :- r(X).", {{"r", {"ab"}}}, "q");
  // Domain: eps, a, b, ab.
  EXPECT_EQ(rows, (RowList{{""}, {"a"}, {"ab"}, {"b"}}));
}

TEST(EvalEngine, InverseSuffixSolvesStructuralRecursion) {
  // up(X) :- up(X[2:end]) walks upward through the domain: from up(c),
  // derive every domain sequence whose suffix-from-2 is already in up.
  // The planner solves X from the matched fact via the domain's length
  // buckets (ArgMode::kInverseSuffix) instead of enumerating the domain.
  EXPECT_EQ(RunQuery("dom(X[N:end]) :- r(X).\n"  // just seeds the domain
                "up(c) :- true.\n"
                "up(X) :- up(X[2:end]).",
                {{"r", {"abc"}}}, "up"),
            (RowList{{"abc"}, {"bc"}, {"c"}}));
}

TEST(EvalEngine, InverseSuffixWithLargerOffset) {
  // X[3:end] = c forces len(X) = 3: only "abc" qualifies in the domain
  // of subsequences of "abc".
  EXPECT_EQ(RunQuery("p(X) :- r(q), s(X[3:end]).",
                {{"r", {"q"}}, {"s", {"c"}}, {"r", {"abc"}}}, "p"),
            (RowList{{"abc"}}));
}

TEST(EvalEngine, InverseSuffixEmptyValueMatchesLengthLoMinusOne) {
  // X[2:end] = eps forces len(X) = 1: every single-symbol domain
  // sequence qualifies (the definedness boundary n1 = end+1).
  EXPECT_EQ(RunQuery("p(X) :- s(X[2:end]).",
                {{"s", {""}}, {"s", {"ab"}}}, "p"),
            (RowList{{"a"}, {"b"}}));
}

TEST(EvalEngine, InverseSuffixPlanIsMarked) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("up(X) :- up(X[2:end]).").ok());
  eval::Evaluator ev(engine.catalog(), engine.pool(), engine.registry());
  ASSERT_TRUE(ev.SetProgram(engine.program()).ok());
  std::string dbg = eval::DebugString(ev.plans()[0], *engine.catalog());
  EXPECT_NE(dbg.find("inv"), std::string::npos) << dbg;
  // No domain enumeration for X is left in the plan.
  EXPECT_EQ(dbg.find("enum{X"), std::string::npos) << dbg;
}

TEST(EvalEngine, AllStrategiesAgreeOnStronglySafePrograms) {
  const char* program =
      "len2(X[1:2]) :- r(X).\n"
      "pair(X ++ Y) :- len2(X), len2(Y).\n";
  std::vector<std::pair<std::string, std::vector<std::string>>> facts = {
      {"r", {"abc"}}, {"r", {"xy"}}};
  RowList naive = RunQuery(program, facts, "pair", eval::Strategy::kNaive);
  RowList semi = RunQuery(program, facts, "pair", eval::Strategy::kSemiNaive);
  RowList strat = RunQuery(program, facts, "pair", eval::Strategy::kStratified);
  EXPECT_EQ(naive, semi);
  EXPECT_EQ(naive, strat);
  EXPECT_EQ(naive, (RowList{{"abab"}, {"abxy"}, {"xyab"}, {"xyxy"}}));
}

TEST(EvalEngine, StratifiedRefusesUnsafePrograms) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("p(X ++ X) :- p(X).\np(X) :- r(X).").ok());
  ASSERT_TRUE(engine.AddFact("r", {"a"}).ok());
  eval::EvalOptions options;
  options.strategy = eval::Strategy::kStratified;
  eval::EvalOutcome outcome = engine.Evaluate(options);
  EXPECT_EQ(outcome.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(outcome.status.message().find("constructive cycle"),
            std::string::npos)
      << outcome.status.ToString();
}

TEST(EvalEngine, IterationBudget) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("p(X ++ a) :- p(X).\np(X) :- r(X).").ok());
  ASSERT_TRUE(engine.AddFact("r", {"a"}).ok());
  eval::EvalOptions options;
  options.limits.max_iterations = 10;
  eval::EvalOutcome outcome = engine.Evaluate(options);
  EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(outcome.stats.iterations, 10u);
}

TEST(EvalEngine, SequenceLengthBudget) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("p(X ++ X) :- p(X).\np(X) :- r(X).").ok());
  ASSERT_TRUE(engine.AddFact("r", {"aa"}).ok());
  eval::EvalOptions options;
  options.limits.max_sequence_length = 64;
  eval::EvalOutcome outcome = engine.Evaluate(options);
  EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(outcome.status.message().find("longer"), std::string::npos);
}

TEST(EvalEngine, FactBudget) {
  Engine engine;
  ASSERT_TRUE(
      engine.LoadProgram("p(X, Y) :- r(X), r(Y).").ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(engine.AddFact("r", {std::string(1, 'a' + (i % 26)) +
                                     std::to_string(i)}).ok());
  }
  eval::EvalOptions options;
  options.limits.max_facts = 100;  // 60 edb + 3600 derived > 100
  eval::EvalOutcome outcome = engine.Evaluate(options);
  EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted);
}

TEST(EvalEngine, GrowthTracking) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(
      "rev(eps, eps) :- true.\n"
      "rev(X[1:N+1], X[N+1] ++ Y) :- r(X), rev(X[1:N], Y).").ok());
  ASSERT_TRUE(engine.AddFact("r", {"abcd"}).ok());
  eval::EvalOptions options;
  options.track_growth = true;
  eval::EvalOutcome outcome = engine.Evaluate(options);
  ASSERT_TRUE(outcome.status.ok());
  ASSERT_GE(outcome.stats.growth.size(), 4u);
  // Facts and domain grow monotonically.
  for (size_t i = 1; i < outcome.stats.growth.size(); ++i) {
    EXPECT_GE(outcome.stats.growth[i].first,
              outcome.stats.growth[i - 1].first);
    EXPECT_GE(outcome.stats.growth[i].second,
              outcome.stats.growth[i - 1].second);
  }
}

TEST(EvalEngine, StatsReportFactsAndDomain) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("p(X[1:N]) :- r(X).").ok());
  ASSERT_TRUE(engine.AddFact("r", {"abc"}).ok());
  eval::EvalOutcome outcome = engine.Evaluate();
  ASSERT_TRUE(outcome.status.ok());
  // p holds all prefixes: eps, a, ab, abc -> 4 facts + 1 edb fact.
  EXPECT_EQ(outcome.stats.facts, 5u);
  EXPECT_EQ(outcome.stats.domain_sequences, 7u);
  EXPECT_GT(outcome.stats.derivations, 0u);
  EXPECT_GE(outcome.stats.millis, 0.0);
}

TEST(EvalEngine, TransducerTermsInHeads) {
  Engine engine;
  auto square = transducer::MakeSquare("square");
  ASSERT_TRUE(square.ok());
  ASSERT_TRUE(engine.RegisterTransducer(square.value()).ok());
  ASSERT_TRUE(engine.LoadProgram("sq(@square(X)) :- r(X).").ok());
  ASSERT_TRUE(engine.AddFact("r", {"ab"}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  Result<RowList> rows = engine.Query("sq");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), (RowList{{"abab"}}));
}

TEST(EvalEngine, ComposedTransducerTerms) {
  Engine engine;
  auto append = transducer::MakeAppend("append", 2);
  ASSERT_TRUE(append.ok());
  ASSERT_TRUE(engine.RegisterTransducer(append.value()).ok());
  ASSERT_TRUE(
      engine.LoadProgram("p(@append(X, @append(X, X))) :- r(X).").ok());
  ASSERT_TRUE(engine.AddFact("r", {"ab"}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  Result<RowList> rows = engine.Query("p");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), (RowList{{"ababab"}}));
}

TEST(EvalEngine, UnknownTransducerFailsAtLoad) {
  Engine engine;
  Status s = engine.LoadProgram("p(@nope(X)) :- r(X).");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(EvalEngine, TransducerArityCheckedAtLoad) {
  Engine engine;
  auto append = transducer::MakeAppend("append", 2);
  ASSERT_TRUE(append.ok());
  ASSERT_TRUE(engine.RegisterTransducer(append.value()).ok());
  Status s = engine.LoadProgram("p(@append(X)) :- r(X).");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(EvalEngine, PlanDebugStringShowsSchedule) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(
      "rev(X[1:N+1], X[N+1] ++ Y) :- r(X), rev(X[1:N], Y).").ok());
  eval::Evaluator ev(engine.catalog(), engine.pool(), engine.registry());
  ASSERT_TRUE(ev.SetProgram(engine.program()).ok());
  std::string dbg = eval::DebugString(ev.plans()[0], *engine.catalog());
  EXPECT_NE(dbg.find("constructive"), std::string::npos);
  EXPECT_NE(dbg.find("domain-sensitive"), std::string::npos);
  EXPECT_NE(dbg.find("enum{N"), std::string::npos);
}

}  // namespace
}  // namespace seqlog
