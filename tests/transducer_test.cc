// Unit tests for the generalized transducer machine model (Definition 7):
// execution semantics, the subtransducer call protocol (Figure 1),
// Definition 7's restrictions, tracing, and ground-transition expansion.
#include <gtest/gtest.h>

#include "sequence/sequence_pool.h"
#include "transducer/builder.h"
#include "transducer/library.h"
#include "transducer/transducer.h"

namespace seqlog {
namespace transducer {
namespace {

class TransducerTest : public ::testing::Test {
 protected:
  SeqId Seq(std::string_view text) {
    return pool_.FromChars(text, &symbols_);
  }
  std::string Render(SeqId id) { return pool_.Render(id, symbols_); }
  Symbol Sym(std::string_view name) { return symbols_.Intern(name); }

  SymbolTable symbols_;
  SequencePool pool_;
};

TEST_F(TransducerTest, IdentityCopiesInput) {
  auto t = MakeIdentity("copy");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->Order(), 1);
  EXPECT_EQ((*t)->NumInputs(), 1u);
  auto out = (*t)->Apply(std::vector<SeqId>{Seq("hello")}, &pool_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(Render(out.value()), "hello");
}

TEST_F(TransducerTest, EmptyInputHaltsImmediately) {
  auto t = MakeIdentity("copy");
  ASSERT_TRUE(t.ok());
  auto out = (*t)->Apply(std::vector<SeqId>{kEmptySeq}, &pool_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), kEmptySeq);
}

TEST_F(TransducerTest, WrongInputCountRejected) {
  auto t = MakeIdentity("copy");
  ASSERT_TRUE(t.ok());
  auto out = (*t)->Apply(std::vector<SeqId>{Seq("a"), Seq("b")}, &pool_);
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TransducerTest, StuckMachineIsFailedPrecondition) {
  // A machine accepting only 'a's, run on "ab".
  TransducerBuilder b("only_a", 1);
  StateId q = b.State("q0");
  b.Add(q, {SymPattern::Exact(Sym("a"))}, q, {HeadMove::kAdvance},
        Output::Echo(0));
  auto t = b.Build();
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE((*t)->Apply(std::vector<SeqId>{Seq("aaa")}, &pool_).ok());
  auto out = (*t)->Apply(std::vector<SeqId>{Seq("ab")}, &pool_);
  EXPECT_EQ(out.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(TransducerTest, Definition7RequiresAHeadMove) {
  TransducerBuilder b("bad", 1);
  StateId q = b.State("q0");
  b.Add(q, {SymPattern::Any()}, q, {HeadMove::kStay}, Output::Epsilon());
  auto t = b.Build();
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(t.status().message().find("restriction (i)"),
            std::string::npos);
}

TEST_F(TransducerTest, Definition7MarkerHeadsStay) {
  TransducerBuilder b("bad", 1);
  StateId q = b.State("q0");
  b.Add(q, {SymPattern::Marker()}, q, {HeadMove::kAdvance},
        Output::Epsilon());
  auto t = b.Build();
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(t.status().message().find("restriction (ii)"),
            std::string::npos);
}

TEST_F(TransducerTest, Definition7CalleeArity) {
  auto callee = MakeIdentity("copy1");  // 1 input; caller needs m+1 = 2
  ASSERT_TRUE(callee.ok());
  TransducerBuilder b("bad", 1);
  StateId q = b.State("q0");
  b.Add(q, {SymPattern::Any()}, q, {HeadMove::kAdvance},
        Output::Call(callee.value()));
  auto t = b.Build();
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(t.status().message().find("restriction (iii)"),
            std::string::npos);
}

TEST_F(TransducerTest, OrderComputedFromCallNesting) {
  auto square = MakeSquare("sq");
  ASSERT_TRUE(square.ok());
  EXPECT_EQ((*square)->Order(), 2);
  auto dexp = MakeDoubleExp("dx");
  ASSERT_TRUE(dexp.ok());
  EXPECT_EQ((*dexp)->Order(), 3);
}

TEST_F(TransducerTest, SubtransducerCallProtocol) {
  // Figure 1 / Section 6.1: the callee reads copies of the caller's
  // inputs plus the current output; its output overwrites the caller's.
  RunStats stats;
  auto square = MakeSquare("sq");
  ASSERT_TRUE(square.ok());
  auto out = (*square)->Run(std::vector<SeqId>{Seq("abc")}, &pool_, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(Render(out.value()), "abcabcabc");
  EXPECT_EQ(stats.calls, 3u);           // one call per input symbol
  EXPECT_EQ(stats.top_steps, 3u);       // driver transitions
  EXPECT_GT(stats.total_steps, stats.top_steps);
  EXPECT_EQ(stats.max_output, 9u);
}

TEST_F(TransducerTest, Figure2TraceShape) {
  // Figure 2: the step-by-step computation of T_square on abc. Each row
  // calls the append subtransducer; outputs grow by one copy of abc.
  auto square = MakeSquare("sq");
  ASSERT_TRUE(square.ok());
  RunStats stats;
  std::vector<TraceRow> trace;
  auto out = (*square)->Run(std::vector<SeqId>{Seq("abc")}, &pool_, &stats,
                            &trace);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(trace.size(), 3u);
  const char* expected_before[] = {"", "abc", "abcabc"};
  const char* expected_after[] = {"abc", "abcabc", "abcabcabc"};
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(trace[i].step, i + 1);
    EXPECT_EQ(trace[i].head_positions[0], i);
    EXPECT_EQ(pool_.Render(pool_.Intern(trace[i].output_before), symbols_),
              expected_before[i]);
    EXPECT_EQ(pool_.Render(pool_.Intern(trace[i].output_after), symbols_),
              expected_after[i]);
    EXPECT_NE(trace[i].operation.find("call"), std::string::npos);
  }
}

TEST_F(TransducerTest, OutputBudgetStopsRunaway) {
  TransducerBuilder b("sq", 1);
  StateId q = b.State("q0");
  auto append = MakeAppend("app", 2);
  ASSERT_TRUE(append.ok());
  b.Add(q, {SymPattern::Any()}, q, {HeadMove::kAdvance},
        Output::Call(append.value()));
  b.SetMaxOutputLength(16);
  auto t = b.Build();
  ASSERT_TRUE(t.ok());
  std::string input(10, 'x');
  auto out = (*t)->Apply(std::vector<SeqId>{Seq(input)}, &pool_);
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(TransducerTest, GroundEnumerationExpandsPatterns) {
  auto append = MakeAppend("app", 2);
  ASSERT_TRUE(append.ok());
  std::vector<Symbol> alphabet = {Sym("a"), Sym("b")};
  auto ground = (*append)->EnumerateGroundTransitions(alphabet);
  // 3^2 combinations minus the all-marker one = 8, each matched by one
  // of the two priority rows.
  EXPECT_EQ(ground.size(), 8u);
  for (const auto& g : ground) {
    // Echo outputs must be grounded to concrete symbols.
    EXPECT_NE(g.output.kind, Output::Kind::kEcho);
    if (g.output.kind == Output::Kind::kSymbol) {
      EXPECT_NE(g.output.symbol, kEndMarker);
    }
  }
}

TEST_F(TransducerTest, GroundEnumerationIsDeterministic) {
  auto append = MakeAppend("app", 2);
  ASSERT_TRUE(append.ok());
  std::vector<Symbol> alphabet = {Sym("a"), Sym("b"), Sym("c")};
  auto g1 = (*append)->EnumerateGroundTransitions(alphabet);
  auto g2 = (*append)->EnumerateGroundTransitions(alphabet);
  ASSERT_EQ(g1.size(), g2.size());
  // At most one ground transition per (state, scanned) pair.
  std::set<std::vector<Symbol>> seen;
  for (const auto& g : g1) {
    std::vector<Symbol> key = g.scanned;
    key.push_back(g.from);
    EXPECT_TRUE(seen.insert(key).second);
  }
}

TEST_F(TransducerTest, CalleesListsDirectSubtransducers) {
  auto square = MakeSquare("sq");
  ASSERT_TRUE(square.ok());
  auto callees = (*square)->Callees();
  ASSERT_EQ(callees.size(), 1u);
  EXPECT_EQ(callees[0]->name(), "sq_append");
  auto copy = MakeIdentity("c");
  ASSERT_TRUE(copy.ok());
  EXPECT_TRUE((*copy)->Callees().empty());
}

TEST_F(TransducerTest, EchoAtMarkerIsRejectedAtBuild) {
  TransducerBuilder b("bad", 1);
  StateId q = b.State("q0");
  b.Add(q, {SymPattern::Marker()}, q, {HeadMove::kStay}, Output::Echo(0));
  auto t = b.Build();
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace transducer
}  // namespace seqlog
