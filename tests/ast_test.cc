// Unit tests for the AST: term constructors, constructive detection,
// guardedness (Section 3.1), validation, printing.
#include <gtest/gtest.h>

#include "ast/clause.h"
#include "ast/term.h"
#include "ast/validate.h"
#include "parser/parser.h"

namespace seqlog {
namespace ast {
namespace {

class AstTest : public ::testing::Test {
 protected:
  Clause Parse(std::string_view text) {
    Result<Clause> c = parser::ParseClause(text, &symbols_, &pool_);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return c.value();
  }
  Program ParseP(std::string_view text) {
    Result<Program> p = parser::ParseProgram(text, &symbols_, &pool_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return p.value();
  }
  SymbolTable symbols_;
  SequencePool pool_;
};

TEST_F(AstTest, ConstructiveDetection) {
  EXPECT_FALSE(Parse("p(X) :- q(X).").IsConstructiveClause());
  EXPECT_FALSE(Parse("p(X[1:N]) :- q(X).").IsConstructiveClause());
  EXPECT_TRUE(Parse("p(X ++ Y) :- q(X), q(Y).").IsConstructiveClause());
  EXPECT_TRUE(Parse("p(X[1] ++ Y) :- q(X), q(Y).").IsConstructiveClause());
}

TEST_F(AstTest, TransducerTermsAreConstructive) {
  Program p = ParseP("p(@t(X)) :- q(X).");
  EXPECT_TRUE(p.clauses[0].IsConstructiveClause());
  EXPECT_TRUE(p.IsTransducerDatalog());
  EXPECT_EQ(p.MentionedTransducers(), std::set<std::string>{"t"});
}

TEST_F(AstTest, PureSequenceDatalogHasNoTransducers) {
  Program p = ParseP("p(X ++ Y) :- q(X), q(Y).");
  EXPECT_FALSE(p.IsTransducerDatalog());
  EXPECT_TRUE(p.MentionedTransducers().empty());
}

TEST_F(AstTest, GuardednessFollowsThePaperExamples) {
  // Section 3.1: X is guarded in p(X[1]) :- q(X), unguarded in
  // p(X) :- q(X[1]).
  EXPECT_TRUE(IsGuarded(Parse("p(X[1]) :- q(X).")));
  EXPECT_FALSE(IsGuarded(Parse("p(X) :- q(X[1]).")));
  EXPECT_FALSE(IsGuarded(Parse("p(X) :- true.")));
  EXPECT_TRUE(IsGuarded(Parse("p(X, Y) :- q(X), r(Y).")));
  // Equality atoms do not guard.
  EXPECT_FALSE(IsGuarded(Parse("p(X) :- X = abc.")));
}

TEST_F(AstTest, GuardedVarsListsBodyPredicateArguments) {
  Clause c = Parse("p(X, Y) :- q(X), Y = X[1:2].");
  std::set<std::string> guarded = GuardedVars(c);
  EXPECT_TRUE(guarded.count("X"));
  EXPECT_FALSE(guarded.count("Y"));
}

TEST_F(AstTest, CollectVarsSplitsRoles) {
  Clause c = Parse("p(X[N:M], Y) :- q(Y).");
  std::set<std::string> seq_vars;
  std::set<std::string> idx_vars;
  CollectAtomVars(c.head, &seq_vars, &idx_vars);
  EXPECT_EQ(seq_vars, (std::set<std::string>{"X", "Y"}));
  EXPECT_EQ(idx_vars, (std::set<std::string>{"N", "M"}));
}

TEST_F(AstTest, ValidationRejectsVariableRoleClash) {
  // N used as both index and sequence variable.
  Result<Program> p =
      parser::ParseProgram("p(N, X[N:end]) :- q(X).", &symbols_, &pool_);
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AstTest, ValidationRejectsConstructiveBody) {
  Result<Program> p =
      parser::ParseProgram("p(X) :- q(X ++ X).", &symbols_, &pool_);
  EXPECT_FALSE(p.ok());
}

TEST_F(AstTest, ValidationRejectsArityMismatch) {
  Result<Program> p = parser::ParseProgram("p(X) :- q(X).\np(X, Y) :- q(X), q(Y).",
                                           &symbols_, &pool_);
  EXPECT_FALSE(p.ok());
}

TEST_F(AstTest, ValidationRejectsTransducersInSequenceDatalog) {
  Program p = ParseP("p(@t(X)) :- q(X).");
  EXPECT_TRUE(Validate(p).ok());
  EXPECT_FALSE(ValidateSequenceDatalog(p).ok());
}

TEST_F(AstTest, HeadPredicates) {
  Program p = ParseP("p(X) :- q(X).\nr(X) :- p(X).");
  EXPECT_EQ(p.HeadPredicates(), (std::set<std::string>{"p", "r"}));
}

TEST_F(AstTest, ToStringRoundTripsThroughParser) {
  const char* sources[] = {
      "p(X) :- q(X).",
      "suffix(X[N:end]) :- r(X).",
      "answer(X ++ Y) :- r(X), r(Y).",
      "p(X) :- X[1] = a, q(X[2:end]).",
      "p(X, Y) :- q(X), X != Y.",
      "rna(D, @transcribe(D)) :- dna(D).",
      "p(\"abc\") :- true.",
  };
  for (const char* src : sources) {
    Clause c1 = Parse(src);
    std::string printed = ToString(c1, pool_, symbols_);
    Clause c2 = Parse(printed);
    EXPECT_EQ(printed, ToString(c2, pool_, symbols_)) << src;
  }
}

TEST_F(AstTest, IndexTermPrinting) {
  Clause c = Parse("p(X[N+1:end-2]) :- q(X).");
  std::string s = ToString(c, pool_, symbols_);
  EXPECT_NE(s.find("X[N+1:end-2]"), std::string::npos) << s;
}

TEST_F(AstTest, MakeIndexedPointSharesIndexTerm) {
  SeqTermPtr term = MakeIndexedPoint(MakeVariable("X"),
                                     MakeIndexVariable("N"));
  EXPECT_EQ(term->lo.get(), term->hi.get());
}

}  // namespace
}  // namespace ast
}  // namespace seqlog
