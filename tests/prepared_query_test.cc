// Prepared queries, parameterized goals, snapshots and the ResultSet
// cursor API (core/prepared_query.h, core/snapshot.h, core/result_set.h).
//
// The load-bearing properties:
//  * PreparedQuery::Execute answers exactly what Engine::Solve answers
//    for the same goal instance — while performing ZERO parsing and ZERO
//    magic rewriting per call (the stats() counters prove it);
//  * snapshots freeze the EDB at publish time: later AddFacts are
//    invisible to old snapshots and visible to new ones.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/programs.h"
#include "transducer/genome.h"

namespace seqlog {
namespace {

using RowList = std::vector<RenderedRow>;

/// Solve's rendered+sorted answers for `goal` (the legacy oracle).
RowList SolveAnswers(Engine* engine, const std::string& goal) {
  SolveOutcome solved = engine->Solve(goal);
  EXPECT_TRUE(solved.status.ok()) << goal << ": "
                                  << solved.status.ToString();
  return solved.answers;
}

TEST(PreparedQuery, MatchesSolveAcrossRebinds) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgtacgt"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ttttgggg"}).ok());

  Result<PreparedQuery> prepared = engine.Prepare("?- suffix($1).");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared->param_count(), 1u);
  EXPECT_EQ(prepared->goal_adornment(), "b");

  for (const char* probe : {"acgt", "gggg", "t", "zz", ""}) {
    ASSERT_TRUE(prepared->Bind(1, probe).ok());
    ResultSet rs = prepared->Execute();
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_EQ(rs.Materialize(),
              SolveAnswers(&engine, std::string("?- suffix(") +
                                        (probe[0] ? probe : "eps") + ")."))
        << "probe " << probe;
  }
}

TEST(PreparedQuery, RebindPerformsZeroParsingAndZeroRewriting) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgtacgt"}).ok());

  Result<PreparedQuery> prepared = engine.Prepare("?- suffix($1).");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  PreparedQueryStats before = prepared->stats();
  EXPECT_EQ(before.goal_parses, 1u);
  EXPECT_EQ(before.magic_rewrites, 1u);
  EXPECT_EQ(before.plan_compilations, 1u);
  EXPECT_EQ(before.executions, 0u);

  size_t rewritten_clauses = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(prepared->Bind(1, i % 2 == 0 ? "acgt" : "tacgt").ok());
    ResultSet rs = prepared->Execute();
    ASSERT_TRUE(rs.ok());
    ASSERT_EQ(rs.size(), 1u);
    if (i == 0) rewritten_clauses = rs.stats().rewritten_clauses;
    // The cached rewrite is byte-identical across rebinds.
    EXPECT_EQ(rs.stats().rewritten_clauses, rewritten_clauses);
  }

  PreparedQueryStats after = prepared->stats();
  EXPECT_EQ(after.goal_parses, 1u);        // never re-parsed
  EXPECT_EQ(after.magic_rewrites, 1u);     // never re-rewritten
  EXPECT_EQ(after.plan_compilations, 1u);  // never re-compiled
  EXPECT_EQ(after.executions, 10u);
}

TEST(PreparedQuery, UnboundParameterIsFailedPrecondition) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- suffix($1).");
  ASSERT_TRUE(prepared.ok());
  ResultSet rs = prepared->Execute();
  EXPECT_EQ(rs.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(rs.status().message().find("$1"), std::string::npos)
      << rs.status().ToString();
  EXPECT_TRUE(rs.empty());
}

TEST(PreparedQuery, BindRejectsUnknownParameterIndex) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- suffix($1).");
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->Bind(2, "x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(prepared->Bind(0, "x").code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(prepared->Bind(1, "x").ok());
}

TEST(PreparedQuery, NonConsecutiveParametersRejected) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("pair(X, Y) :- r(X), r(Y).").ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- pair($2, X).");
  ASSERT_FALSE(prepared.ok());
  EXPECT_EQ(prepared.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(prepared.status().message().find("$1"), std::string::npos);
}

TEST(PreparedQuery, SolveOnParameterizedGoalReportsUnbound) {
  // The one-shot Solve path cannot bind parameters: executing the goal
  // surfaces the unbound-parameter precondition instead of garbage.
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  SolveOutcome solved = engine.Solve("?- suffix($1).");
  EXPECT_EQ(solved.status.code(), StatusCode::kFailedPrecondition);
}

TEST(PreparedQuery, EdbGoalNeedsNoRewrite) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgt"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"tt"}).ok());

  Result<PreparedQuery> prepared = engine.Prepare("?- r($1).");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedQueryStats stats = prepared->stats();
  EXPECT_EQ(stats.goal_parses, 1u);
  EXPECT_EQ(stats.magic_rewrites, 0u);  // database scan, no magic
  ASSERT_TRUE(prepared->Bind(1, "tt").ok());
  ResultSet rs = prepared->Execute();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.Materialize(), (RowList{{"tt"}}));
  ASSERT_TRUE(prepared->Bind(1, "gg").ok());
  EXPECT_TRUE(prepared->Execute().empty());
}

TEST(PreparedQuery, RepeatedParameterJoins) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("pair(X, Y) :- r(X), r(Y).").ok());
  ASSERT_TRUE(engine.AddFact("r", {"a"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"b"}).ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- pair($1, $1).");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared->param_count(), 1u);
  ASSERT_TRUE(prepared->Bind(1, "a").ok());
  ResultSet rs = prepared->Execute();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.Materialize(), (RowList{{"a", "a"}}));
}

TEST(PreparedQuery, MixedGroundParamAndFreeArguments) {
  Engine engine;
  auto transcribe =
      transducer::MakeTranscribe("transcribe", engine.symbols());
  ASSERT_TRUE(transcribe.ok());
  ASSERT_TRUE(engine.RegisterTransducer(transcribe.value()).ok());
  auto translate = transducer::MakeTranslate("translate", engine.symbols());
  ASSERT_TRUE(translate.ok());
  ASSERT_TRUE(engine.RegisterTransducer(translate.value()).ok());
  ASSERT_TRUE(engine.LoadProgram(programs::kGenomePipeline).ok());
  ASSERT_TRUE(engine.AddFact("dnaseq", {"acgtacgt"}).ok());
  ASSERT_TRUE(engine.AddFact("dnaseq", {"ttacgc"}).ok());

  Result<PreparedQuery> prepared = engine.Prepare("?- rnaseq($1, X).");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  for (const char* dna : {"acgtacgt", "ttacgc", "gg"}) {
    ASSERT_TRUE(prepared->Bind(1, dna).ok());
    ResultSet rs = prepared->Execute();
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_EQ(rs.Materialize(),
              SolveAnswers(&engine, std::string("?- rnaseq(") + dna +
                                        ", X)."))
        << dna;
  }
  EXPECT_EQ(prepared->stats().magic_rewrites, 1u);
}

TEST(PreparedQuery, AllFreeGoalDegeneratesToFullEvaluation) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ab"}).ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- suffix(X).");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared->param_count(), 0u);
  ResultSet rs = prepared->Execute();
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  EXPECT_EQ(rs.Materialize(), engine.Query("suffix").value());
}

TEST(PreparedQuery, FactsAddedAfterPrepareAreVisible) {
  // The cached rewrite must not bake in which predicates currently have
  // facts: `reach` is derived AND extensional, and its facts arrive only
  // after Prepare.
  Engine engine;
  ASSERT_TRUE(
      engine.LoadProgram("reach(X, Z) :- reach(X, Y), reach(Y, Z).").ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- reach($1, X).");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ASSERT_TRUE(prepared->Bind(1, "a").ok());
  EXPECT_TRUE(prepared->Execute().empty());  // nothing yet

  ASSERT_TRUE(engine.AddFact("reach", {"a", "b"}).ok());
  ASSERT_TRUE(engine.AddFact("reach", {"b", "c"}).ok());
  ResultSet rs = prepared->Execute();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.Materialize(), (RowList{{"a", "b"}, {"a", "c"}}));
}

TEST(PreparedQuery, NotDemandEvaluableGoalRejectedAtPrepare) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("p(X ++ a) :- e(X).\n"
                                 "s(X) :- p(X).\n"
                                 "h(X) :- s(X), p(X).\n")
                  .ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- h($1).");
  ASSERT_FALSE(prepared.ok());
  EXPECT_EQ(prepared.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PreparedQuery, UnknownPredicateAndArityErrors) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  EXPECT_EQ(engine.Prepare("?- nosuch($1).").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.Prepare("?- suffix($1, $2).").status().code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------ snapshots
TEST(Snapshot, IsolatesReadersFromLaterFacts) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgt"}).ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- suffix($1).");
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->Bind(1, "gg").ok());

  Snapshot before = engine.PublishSnapshot();
  ASSERT_TRUE(before.valid());
  EXPECT_TRUE(prepared->Execute(before).empty());  // gg not a suffix yet

  ASSERT_TRUE(engine.AddFact("r", {"ttgg"}).ok());
  Snapshot after = engine.PublishSnapshot();
  EXPECT_GT(after.version(), before.version());

  EXPECT_TRUE(prepared->Execute(before).empty());   // frozen
  EXPECT_EQ(prepared->Execute(after).size(), 1u);   // sees ttgg
  EXPECT_EQ(prepared->Execute().size(), 1u);        // live EDB too
  EXPECT_EQ(before.TotalFacts(), 1u);
  EXPECT_EQ(after.TotalFacts(), 2u);
}

TEST(Snapshot, RepublishingUnchangedEdbReusesTheCopy) {
  Engine engine;
  ASSERT_TRUE(engine.AddFact("r", {"a"}).ok());
  Snapshot s1 = engine.PublishSnapshot();
  Snapshot s2 = engine.PublishSnapshot();
  EXPECT_EQ(s1.version(), s2.version());
  EXPECT_EQ(s1.shared().get(), s2.shared().get());  // copy-on-publish
  ASSERT_TRUE(engine.AddFact("r", {"b"}).ok());
  Snapshot s3 = engine.PublishSnapshot();
  EXPECT_NE(s3.shared().get(), s1.shared().get());
}

TEST(Snapshot, InvalidSnapshotIsRejectedByExecute) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- suffix(acgt).");
  ASSERT_TRUE(prepared.ok());
  Snapshot invalid;
  EXPECT_FALSE(invalid.valid());
  ResultSet rs = prepared->Execute(invalid);
  EXPECT_EQ(rs.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------ ResultSet
TEST(ResultSetTest, CursorRendersOnDemand) {
  Engine engine;
  auto transcribe =
      transducer::MakeTranscribe("transcribe", engine.symbols());
  ASSERT_TRUE(transcribe.ok());
  ASSERT_TRUE(engine.RegisterTransducer(transcribe.value()).ok());
  auto translate = transducer::MakeTranslate("translate", engine.symbols());
  ASSERT_TRUE(translate.ok());
  ASSERT_TRUE(engine.RegisterTransducer(translate.value()).ok());
  ASSERT_TRUE(engine.LoadProgram(programs::kGenomePipeline).ok());
  ASSERT_TRUE(engine.AddFact("dnaseq", {"acgt"}).ok());

  Result<PreparedQuery> prepared = engine.Prepare("?- rnaseq(acgt, X).");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ResultSet rs = prepared->Execute(engine.PublishSnapshot());
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_FALSE(rs.empty());
  EXPECT_EQ(rs.arity(), 2u);

  Row row = rs[0];
  EXPECT_EQ(row.size(), 2u);
  EXPECT_EQ(row.value(0).Render(), "acgt");
  EXPECT_EQ(row.value(1).Render(), "ugca");
  EXPECT_EQ(row.value(1).Length(), 4u);
  EXPECT_EQ(row.ids().size(), 2u);
  EXPECT_EQ(row.ids()[0], rs.ids(0)[0]);

  size_t visited = 0;
  for (Row r : rs) {
    EXPECT_EQ(r.Render().size(), 2u);
    ++visited;
  }
  EXPECT_EQ(visited, 1u);
  EXPECT_EQ(rs.Materialize(), (RowList{{"acgt", "ugca"}}));
}

TEST(ResultSetTest, OutlivesItsSnapshotObject) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgt"}).ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- suffix($1).");
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->Bind(1, "cgt").ok());
  ResultSet rs;
  {
    Snapshot scoped = engine.PublishSnapshot();
    rs = prepared->Execute(scoped);
  }  // Snapshot object gone; ResultSet pins the underlying database
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.Materialize(), (RowList{{"cgt"}}));
}

TEST(ResultSetTest, DefaultConstructedIsEmptyAndOk) {
  ResultSet rs;
  EXPECT_TRUE(rs.ok());
  EXPECT_TRUE(rs.empty());
  EXPECT_EQ(rs.size(), 0u);
  EXPECT_EQ(rs.begin(), rs.end());
  EXPECT_TRUE(rs.Materialize().empty());
}

TEST(PreparedQuery, NullaryGoalKeepsItsEmptyRow) {
  // A nullary goal that holds has exactly one answer: the empty tuple.
  // The cursor must report it (size 1, arity 0), matching Solve.
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("win :- r(X).").ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- win.");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  ResultSet miss = prepared->Execute();  // no facts: win is not derivable
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss.empty());
  EXPECT_EQ(miss.size(), 0u);

  ASSERT_TRUE(engine.AddFact("r", {"a"}).ok());
  ResultSet hit = prepared->Execute();
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_FALSE(hit.empty());
  EXPECT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit.arity(), 0u);
  EXPECT_EQ(hit[0].size(), 0u);
  EXPECT_EQ(hit.Materialize(), engine.Solve("?- win.").answers);
}

TEST(Snapshot, IncrementalPublishesMatchFreshEngine) {
  // Publishes are incremental (the previous closure is reused); answers
  // after many add/publish rounds must equal a from-scratch engine's.
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- suffix($1).");
  ASSERT_TRUE(prepared.ok());

  std::vector<std::string> facts;
  Snapshot snap;
  for (int i = 0; i < 6; ++i) {
    facts.push_back(std::string("seq") + static_cast<char>('a' + i));
    ASSERT_TRUE(engine.AddFact("r", {facts.back()}).ok());
    snap = engine.PublishSnapshot();  // one incremental publish per fact
  }

  Engine fresh;
  ASSERT_TRUE(fresh.LoadProgram(programs::kSuffixes).ok());
  for (const std::string& f : facts) {
    ASSERT_TRUE(fresh.AddFact("r", {f}).ok());
  }
  for (const char* probe : {"qa", "eqf", "seqc", "zz"}) {
    ASSERT_TRUE(prepared->Bind(1, probe).ok());
    ResultSet rs = prepared->Execute(snap);
    ASSERT_TRUE(rs.ok());
    EXPECT_EQ(rs.Materialize(),
              fresh.Solve(std::string("?- suffix(") + probe + ").").answers)
        << probe;
  }
}

TEST(Snapshot, ClearFactsResetsThePublishCache) {
  // The incremental publish cache assumes append-only facts; ClearFacts
  // must drop it or stale sequences would leak into later snapshots'
  // domains (observable through domain-enumerating programs like rep1).
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kRep1).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ab"}).ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- rep1(X, X).");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ResultSet before = prepared->Execute(engine.PublishSnapshot());
  ASSERT_TRUE(before.ok());

  engine.ClearFacts();
  ASSERT_TRUE(engine.AddFact("r", {"cd"}).ok());
  ResultSet after = prepared->Execute(engine.PublishSnapshot());
  ASSERT_TRUE(after.ok());
  // The diagonal enumerates the domain: only cd's closure, not ab's.
  RowList rows = after.Materialize();
  for (const RenderedRow& row : rows) {
    EXPECT_EQ(row[0].find('a'), std::string::npos) << row[0];
    EXPECT_EQ(row[0].find('b'), std::string::npos) << row[0];
  }
  EXPECT_EQ(rows, engine.Solve("?- rep1(X, X).").answers);
}

TEST(Snapshot, DomainBudgetAppliesToSnapshotExecutionsToo) {
  // The snapshot's prebuilt closure must not smuggle the EDB past
  // max_domain_sequences: live and snapshot executions fail alike.
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  std::string big;
  for (int i = 0; i < 80; ++i) big += static_cast<char>('a' + (i % 26));
  ASSERT_TRUE(engine.AddFact("r", {big}).ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- suffix($1).");
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->Bind(1, "ab").ok());
  query::SolveOptions options;
  options.eval.limits.max_domain_sequences = 100;  // << 80*81/2
  EXPECT_EQ(prepared->Execute(options).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(prepared->Execute(engine.PublishSnapshot(), options)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

TEST(PreparedQuery, BudgetExhaustionSurfacesStatus) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kRep2).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ab"}).ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- rep2($1, ab).");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ASSERT_TRUE(prepared->Bind(1, "abab").ok());
  query::SolveOptions options;
  options.eval.limits.max_domain_sequences = 5000;
  options.eval.limits.max_iterations = 1000;
  ResultSet rs = prepared->Execute(options);
  EXPECT_EQ(rs.status().code(), StatusCode::kResourceExhausted)
      << rs.status().ToString();
}

}  // namespace
}  // namespace seqlog
