// Randomized differential testing of the transducer compilation layer
// (PR 10 satellite): a seed-reproducible generator emits small random
// NondetTransducers; machines the decision procedure accepts must agree
// with the breadth-first RunAll reference — exhaustively on every input
// up to length 8 (length 6 for 3-symbol alphabets) and on random longer
// inputs — while refusals must carry a stable SL-E20x code and never
// contradict a witnessed single-valued machine. A second corpus builds
// random deterministic two-node networks and checks the compiled/fused
// run against the interpreted run and against manual composition, and a
// corpus prefix runs a compiled network through the full engine at
// thread widths 1/2/8.
//
// Flags (also usable for CI soak runs, .github/workflows/soak.yml):
//   --seed=N    base seed of the corpus (default: fixed corpus)
//   --iters=N   number of generated machines (default 200)
// Environment:
//   SEQLOG_TDIFF_SEED / SEQLOG_TDIFF_ITERS  same as the flags
//   SEQLOG_TDIFF_SEED_LOG  file to append failing seeds to (CI uploads
//                          it as an artifact)
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "base/logging.h"
#include "core/engine.h"
#include "sequence/sequence_pool.h"
#include "sequence/symbol_table.h"
#include "transducer/determinize.h"
#include "transducer/library.h"
#include "transducer/network.h"
#include "transducer/nondet.h"

namespace seqlog {
namespace transducer {
namespace {

uint64_t g_base_seed = 20250807;
size_t g_iters = 200;

void LogFailingSeed(uint64_t seed) {
  const char* path = std::getenv("SEQLOG_TDIFF_SEED_LOG");
  if (path == nullptr || *path == '\0') return;
  if (FILE* f = std::fopen(path, "a")) {
    std::fprintf(f, "%llu\n", static_cast<unsigned long long>(seed));
    std::fclose(f);
  }
}

// ---------------------------------------------------------------------
// Machine generator. Two regimes per seed:
//  - echo-only: every transition echoes its scanned symbol, so every
//    surviving run outputs the input itself — functional by
//    construction, the determinizer must accept (budget aside);
//  - mixed: transitions echo, emit a random symbol, or stay silent —
//    usually non-functional, exercising the refusal paths.
// ---------------------------------------------------------------------

std::shared_ptr<const NondetTransducer> RandomMachine(
    std::mt19937_64* rng, const std::vector<Symbol>& alphabet,
    bool echo_only) {
  std::uniform_int_distribution<int> state_count(1, 4);
  const int n = state_count(*rng);
  NondetBuilder builder("gen", 1);
  std::vector<StateId> states;
  states.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    states.push_back(builder.State("q" + std::to_string(i)));
  }
  builder.SetInitial(states[0]);
  std::uniform_int_distribution<int> row_count(0, 2);
  std::uniform_int_distribution<size_t> state_pick(
      0, static_cast<size_t>(n) - 1);
  std::uniform_int_distribution<size_t> sym_pick(0, alphabet.size() - 1);
  std::uniform_int_distribution<int> out_pick(0, 3);
  auto random_output = [&]() {
    if (echo_only) return NdOutput::Echo(0);
    switch (out_pick(*rng)) {
      case 0:
        return NdOutput::Epsilon();
      case 1:
        return NdOutput::Emit(alphabet[sym_pick(*rng)]);
      default:
        return NdOutput::Echo(0);  // weighted toward echo
    }
  };
  for (int s = 0; s < n; ++s) {
    for (Symbol sym : alphabet) {
      const int rows = row_count(*rng);
      for (int r = 0; r < rows; ++r) {
        builder.Add(states[s], {SymPattern::Exact(sym)},
                    states[state_pick(*rng)], {HeadMove::kAdvance},
                    random_output());
      }
    }
    // Occasionally an Any row, overlapping the exact rows above.
    if ((*rng)() % 4 == 0) {
      builder.Add(states[s], {SymPattern::Any()}, states[state_pick(*rng)],
                  {HeadMove::kAdvance}, random_output());
    }
  }
  auto machine = builder.Build();
  SEQLOG_CHECK(machine.ok()) << machine.status().ToString();
  return machine.value();
}

/// Every input over `alphabet` of length <= max_len, plus `extra` random
/// inputs of length (max_len, 2 * max_len].
std::vector<std::vector<Symbol>> InputCorpus(
    const std::vector<Symbol>& alphabet, size_t max_len, size_t extra,
    std::mt19937_64* rng) {
  std::vector<std::vector<Symbol>> inputs;
  inputs.push_back({});  // empty input
  for (size_t len = 1; len <= max_len; ++len) {
    std::vector<size_t> odo(len, 0);
    while (true) {
      std::vector<Symbol> input(len);
      for (size_t i = 0; i < len; ++i) input[i] = alphabet[odo[i]];
      inputs.push_back(std::move(input));
      size_t i = 0;
      while (i < len && ++odo[i] == alphabet.size()) odo[i++] = 0;
      if (i == len) break;
    }
  }
  std::uniform_int_distribution<size_t> len_dist(max_len + 1, 2 * max_len);
  std::uniform_int_distribution<size_t> sym_pick(0, alphabet.size() - 1);
  for (size_t e = 0; e < extra; ++e) {
    std::vector<Symbol> input(len_dist(*rng));
    for (Symbol& s : input) s = alphabet[sym_pick(*rng)];
    inputs.push_back(std::move(input));
  }
  return inputs;
}

// ---------------------------------------------------------------------
// Corpus 1: determinize vs the breadth-first reference.
// ---------------------------------------------------------------------

bool CheckDeterminizeSeed(uint64_t seed) {
  std::mt19937_64 rng(seed);
  SymbolTable symbols;
  SequencePool pool;
  const size_t alpha_size = 2 + (rng() % 2);
  std::vector<Symbol> alphabet;
  for (size_t i = 0; i < alpha_size; ++i) {
    alphabet.push_back(symbols.Intern(std::string(1, 'a' + char(i))));
  }
  const bool echo_only = rng() & 1;
  auto machine = RandomMachine(&rng, alphabet, echo_only);

  const size_t max_len = alpha_size == 2 ? 8 : 6;
  std::vector<std::vector<Symbol>> inputs =
      InputCorpus(alphabet, max_len, /*extra=*/5, &rng);

  auto det = DeterminizeMachine(*machine, alphabet);
  bool ok = true;
  if (!det.ok()) {
    // A refusal must carry a stable code and must be honest: echo-only
    // machines are functional by construction, so only the state budget
    // could refuse them — and these machines are far too small for that.
    EXPECT_EQ(det.status().code(), StatusCode::kFailedPrecondition)
        << "seed=" << seed;
    const std::string& msg = det.status().message();
    const bool coded = msg.find(kCodeNotFunctional) != std::string::npos ||
                       msg.find(kCodeNotSequential) != std::string::npos ||
                       msg.find(kCodeStateBudget) != std::string::npos;
    EXPECT_TRUE(coded) << "uncoded refusal, seed=" << seed << ": " << msg;
    if (echo_only) {
      ADD_FAILURE() << "echo-only machine refused, seed=" << seed << ": "
                    << msg;
      ok = false;
    }
    if (!coded) ok = false;
    if (!ok) LogFailingSeed(seed);
    return ok;
  }

  for (const std::vector<Symbol>& input : inputs) {
    const SeqId x = pool.Intern(SeqView(input.data(), input.size()));
    auto ref = machine->RunAll(std::span<const SeqId>(&x, 1), &pool);
    if (!ref.ok()) {
      ADD_FAILURE() << "RunAll failed, seed=" << seed << ": "
                    << ref.status().ToString();
      LogFailingSeed(seed);
      return false;
    }
    if (ref.value().size() > 1) {
      ADD_FAILURE() << "determinizer accepted a machine with "
                    << ref.value().size() << " outputs on one input, seed="
                    << seed;
      LogFailingSeed(seed);
      return false;
    }
    std::vector<Symbol> got;
    const bool defined = det.value()->Transduce(input, &got);
    if (ref.value().empty()) {
      if (defined) {
        ADD_FAILURE() << "compiled machine defined where reference is "
                         "undefined, seed=" << seed;
        ok = false;
      }
    } else {
      const SeqId want = ref.value()[0];
      if (!defined) {
        ADD_FAILURE() << "compiled machine undefined where reference "
                         "yields output, seed=" << seed;
        ok = false;
      } else if (pool.Intern(SeqView(got.data(), got.size())) != want) {
        ADD_FAILURE() << "output mismatch, seed=" << seed;
        ok = false;
      }
    }
    if (!ok) break;
  }
  if (!ok) LogFailingSeed(seed);
  return ok;
}

TEST(TransducerDifferential, DeterminizedMachinesMatchBreadthFirst) {
  size_t failures = 0;
  for (size_t i = 0; i < g_iters; ++i) {
    if (!CheckDeterminizeSeed(g_base_seed + i)) {
      if (++failures >= 5) {
        GTEST_FAIL() << "stopping after 5 failing seeds";
        return;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Corpus 2: compiled networks vs interpreted runs vs composition.
// ---------------------------------------------------------------------

TransducerPtr RandomDeterministic(std::mt19937_64* rng,
                                  const std::vector<Symbol>& alphabet,
                                  const std::string& name) {
  std::uniform_int_distribution<size_t> sym_pick(0, alphabet.size() - 1);
  switch ((*rng)() % 4) {
    case 0: {
      auto id = MakeIdentity(name);
      SEQLOG_CHECK(id.ok());
      return id.value();
    }
    case 1: {  // partial or total symbol map
      std::map<Symbol, Symbol> mapping;
      for (Symbol s : alphabet) {
        if ((*rng)() % 4 != 0) mapping[s] = alphabet[sym_pick(*rng)];
      }
      auto map = MakeMap(name, mapping, /*pass_unmapped=*/(*rng)() & 1);
      SEQLOG_CHECK(map.ok());
      return map.value();
    }
    default: {  // erase a random subset
      std::set<Symbol> erase;
      for (Symbol s : alphabet) {
        if ((*rng)() % 3 == 0) erase.insert(s);
      }
      auto er = MakeErase(name, erase);
      SEQLOG_CHECK(er.ok());
      return er.value();
    }
  }
}

bool CheckNetworkSeed(uint64_t seed) {
  std::mt19937_64 rng(seed);
  SymbolTable symbols;
  SequencePool pool;
  std::vector<Symbol> alphabet;
  for (size_t i = 0; i < 3; ++i) {
    alphabet.push_back(symbols.Intern(std::string(1, 'a' + char(i))));
  }
  TransducerPtr first = RandomDeterministic(&rng, alphabet, "first");
  TransducerPtr second = RandomDeterministic(&rng, alphabet, "second");

  TransducerNetwork net("pipe", 1);
  auto n0 = net.AddNode(first, {InputSource::FromNetwork(0)});
  auto n1 = net.AddNode(second, {InputSource::FromNode(n0.value())});
  SEQLOG_CHECK(n0.ok() && n1.ok());
  SEQLOG_CHECK(net.SetOutput(n1.value()).ok());

  std::vector<std::vector<Symbol>> inputs =
      InputCorpus(alphabet, /*max_len=*/4, /*extra=*/8, &rng);

  // Interpreted results first, then compile and replay.
  std::vector<Result<SeqId>> interpreted;
  interpreted.reserve(inputs.size());
  for (const std::vector<Symbol>& input : inputs) {
    const SeqId x = pool.Intern(SeqView(input.data(), input.size()));
    interpreted.push_back(net.Apply(std::span<const SeqId>(&x, 1), &pool));
  }
  Status cs = net.Compile(alphabet);
  if (!cs.ok()) {
    ADD_FAILURE() << "Compile failed (it must fall back, not fail), seed="
                  << seed << ": " << cs.ToString();
    LogFailingSeed(seed);
    return false;
  }

  bool ok = true;
  for (size_t i = 0; i < inputs.size(); ++i) {
    const std::vector<Symbol>& input = inputs[i];
    const SeqId x = pool.Intern(SeqView(input.data(), input.size()));
    auto compiled = net.Apply(std::span<const SeqId>(&x, 1), &pool);
    // Manual composition: second(first(x)), undefined matching undefined.
    auto composed = [&]() -> Result<SeqId> {
      auto mid = first->Apply(std::span<const SeqId>(&x, 1), &pool);
      if (!mid.ok()) return mid.status();
      const SeqId m = mid.value();
      return second->Apply(std::span<const SeqId>(&m, 1), &pool);
    }();
    const bool want_defined = interpreted[i].ok();
    if (compiled.ok() != want_defined || composed.ok() != want_defined) {
      ADD_FAILURE() << "definedness mismatch, seed=" << seed
                    << " input#" << i << " interpreted=" << want_defined
                    << " compiled=" << compiled.ok()
                    << " composed=" << composed.ok();
      ok = false;
      break;
    }
    if (want_defined && (compiled.value() != interpreted[i].value() ||
                         composed.value() != interpreted[i].value())) {
      ADD_FAILURE() << "output mismatch, seed=" << seed << " input#" << i;
      ok = false;
      break;
    }
  }
  if (!ok) LogFailingSeed(seed);
  return ok;
}

TEST(TransducerDifferential, CompiledNetworksMatchInterpretedRuns) {
  size_t failures = 0;
  for (size_t i = 0; i < g_iters; ++i) {
    if (!CheckNetworkSeed(g_base_seed + i)) {
      if (++failures >= 5) {
        GTEST_FAIL() << "stopping after 5 failing seeds";
        return;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Corpus 3 (prefix): compiled networks inside the engine at widths
// 1/2/8. The compiled machine is shared by every worker thread, so this
// doubles as the TSan exercise for DetTransducer and the plan-aware
// TransducerNetwork::Run.
// ---------------------------------------------------------------------

bool CheckEngineSeed(uint64_t seed) {
  std::mt19937_64 rng(seed);
  // The network's own symbols live in the engine's table; build the
  // machines against a scratch table with the same single-letter interns
  // the engine will produce for the same fact strings.
  SymbolTable symbols;
  std::vector<Symbol> alphabet;
  for (size_t i = 0; i < 3; ++i) {
    alphabet.push_back(symbols.Intern(std::string(1, 'a' + char(i))));
  }
  TransducerPtr first = RandomDeterministic(&rng, alphabet, "first");
  TransducerPtr second = RandomDeterministic(&rng, alphabet, "second");

  std::uniform_int_distribution<size_t> len_dist(0, 6);
  std::uniform_int_distribution<size_t> sym_pick(0, 2);
  std::vector<std::string> facts;
  for (size_t i = 0; i < 12; ++i) {
    std::string s;
    const size_t len = len_dist(rng);
    for (size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>('a' + sym_pick(rng)));
    }
    if (!s.empty()) facts.push_back(std::move(s));
  }

  auto run = [&](bool compiled, size_t threads,
                 eval::EvalStats* stats) -> Result<std::vector<RenderedRow>> {
    auto net = std::make_shared<TransducerNetwork>("pipe", 1);
    auto n0 = net->AddNode(first, {InputSource::FromNetwork(0)});
    auto n1 = net->AddNode(second, {InputSource::FromNode(n0.value())});
    SEQLOG_CHECK(n0.ok() && n1.ok());
    SEQLOG_CHECK(net->SetOutput(n1.value()).ok());
    if (compiled) {
      Status cs = net->Compile(alphabet);
      if (!cs.ok()) return cs;
    }
    Engine engine;
    SEQLOG_CHECK(engine.RegisterTransducer(net).ok());
    Status ls = engine.LoadProgram("out(@pipe(X)) :- e(X).");
    if (!ls.ok()) return ls;
    for (const std::string& f : facts) {
      SEQLOG_CHECK(engine.AddFact("e", {f}).ok());
    }
    eval::EvalOptions options;
    options.num_threads = threads;
    options.min_parallel_work = 1;
    eval::EvalOutcome outcome = engine.Evaluate(options);
    if (!outcome.status.ok()) return outcome.status;
    if (stats != nullptr) *stats = outcome.stats;
    return engine.Query("out");
  };

  auto expected = run(/*compiled=*/false, /*threads=*/1, nullptr);
  if (!expected.ok()) {
    ADD_FAILURE() << "interpreted engine run failed, seed=" << seed << ": "
                  << expected.status().ToString();
    LogFailingSeed(seed);
    return false;
  }
  bool ok = true;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    eval::EvalStats stats;
    auto got = run(/*compiled=*/true, threads, &stats);
    if (!got.ok()) {
      ADD_FAILURE() << "compiled engine run failed at threads=" << threads
                    << " seed=" << seed << ": " << got.status().ToString();
      ok = false;
      break;
    }
    if (got.value() != expected.value()) {
      ADD_FAILURE() << "compiled model differs from interpreted at threads="
                    << threads << " seed=" << seed;
      ok = false;
      break;
    }
    // The engine surfaces the network's compile-time counters.
    EXPECT_TRUE(stats.transducer.Any()) << "seed=" << seed;
    EXPECT_EQ(stats.transducer.fusion_hits + stats.transducer.fusion_fallbacks,
              1u)
        << "seed=" << seed;
  }
  if (!ok) LogFailingSeed(seed);
  return ok;
}

TEST(TransducerDifferential, EngineParityAcrossThreadWidthsOnCorpusPrefix) {
  // Engine runs are much heavier than bare machine checks; the corpus
  // prefix keeps default ctest time in check while soak runs scale it
  // with --iters.
  const size_t n = std::min<size_t>(g_iters, 25);
  size_t failures = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!CheckEngineSeed(g_base_seed + i)) {
      if (++failures >= 5) {
        GTEST_FAIL() << "stopping after 5 failing seeds";
        return;
      }
    }
  }
}

}  // namespace
}  // namespace transducer
}  // namespace seqlog

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (const char* env = std::getenv("SEQLOG_TDIFF_SEED")) {
    seqlog::transducer::g_base_seed = std::strtoull(env, nullptr, 10);
  }
  if (const char* env = std::getenv("SEQLOG_TDIFF_ITERS")) {
    seqlog::transducer::g_iters = std::strtoull(env, nullptr, 10);
  }
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      seqlog::transducer::g_base_seed =
          std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (arg.rfind("--iters=", 0) == 0) {
      seqlog::transducer::g_iters = std::strtoull(argv[i] + 8, nullptr, 10);
    }
  }
  return RUN_ALL_TESTS();
}
