// Tests for the Theorem 1 construction: a Sequence Datalog program that
// simulates an arbitrary Turing machine. Also exercises the Theorem 2
// angle: the generated program has an infinite least fixpoint exactly
// when the machine diverges.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "tm/machines.h"
#include "tm/turing.h"
#include "translate/tm_to_sd.h"

namespace seqlog {
namespace {

/// Runs the Theorem 1 program for `machine` on `input` and returns the
/// rendered outputs (trailing blanks stripped, like tm::ExtractOutput).
std::vector<std::string> Simulate(Engine* engine,
                                  const tm::TuringMachine& machine,
                                  const std::string& input) {
  auto program = translate::TmToSequenceDatalog(machine, engine->pool(),
                                                "input", "output");
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  Status s = engine->LoadProgramAst(program.value());
  EXPECT_TRUE(s.ok()) << s.ToString();
  engine->ClearFacts();
  EXPECT_TRUE(engine->AddFact("input", {input}).ok());
  eval::EvalOptions options;
  options.limits.max_iterations = 100000;
  eval::EvalOutcome outcome = engine->Evaluate(options);
  EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  auto rows = engine->Query("output");
  EXPECT_TRUE(rows.ok());
  std::vector<std::string> out;
  for (const RenderedRow& row : rows.value()) {
    std::string rendered = row[0];
    // Strip trailing blanks (the machine pads its tape; Theorem 1's
    // T_decode equivalent).
    while (rendered.size() >= 1 && rendered.back() == '_') {
      rendered.pop_back();
    }
    out.push_back(rendered);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

TEST(TmToSequenceDatalog, SimulatesBitFlip) {
  Engine engine;
  tm::TuringMachine m = tm::MakeBitFlip(engine.symbols());
  EXPECT_EQ(Simulate(&engine, m, "0110"),
            (std::vector<std::string>{"1001"}));
  EXPECT_EQ(Simulate(&engine, m, "1"), (std::vector<std::string>{"0"}));
}

TEST(TmToSequenceDatalog, SimulatesBinaryIncrement) {
  Engine engine;
  tm::TuringMachine m = tm::MakeBinaryIncrement(engine.symbols());
  EXPECT_EQ(Simulate(&engine, m, "0111"),
            (std::vector<std::string>{"1000"}));
  EXPECT_EQ(Simulate(&engine, m, "00"), (std::vector<std::string>{"01"}));
}

TEST(TmToSequenceDatalog, SimulatesQuadraticUnaryDouble) {
  Engine engine;
  tm::TuringMachine m = tm::MakeUnaryDouble(engine.symbols());
  for (size_t n : {1u, 2u, 3u, 4u}) {
    EXPECT_EQ(Simulate(&engine, m, std::string(n, '1')),
              (std::vector<std::string>{std::string(2 * n, '1')}))
        << "n=" << n;
  }
}

TEST(TmToSequenceDatalog, AgreesWithDirectRunner) {
  Engine engine;
  tm::TuringMachine m = tm::MakeBinaryIncrement(engine.symbols());
  for (const char* in : {"0", "01", "010", "0011", "01010"}) {
    std::vector<Symbol> input;
    for (const char* p = in; *p; ++p) {
      input.push_back(engine.symbols()->Intern(std::string_view(p, 1)));
    }
    auto direct = tm::RunMachine(m, input, 10000);
    ASSERT_TRUE(direct.ok());
    std::string expected =
        engine.pool()->Render(
            engine.pool()->Intern(tm::ExtractOutput(m, direct.value())),
            *engine.symbols());
    EXPECT_EQ(Simulate(&engine, m, in),
              (std::vector<std::string>{expected}))
        << in;
  }
}

TEST(TmToSequenceDatalog, MultipleInputsRunIndependently) {
  // Theorem 2's schema-level view: a database with several input facts
  // simulates several computations side by side.
  Engine engine;
  tm::TuringMachine m = tm::MakeBitFlip(engine.symbols());
  auto program = translate::TmToSequenceDatalog(m, engine.pool(), "input",
                                                "output");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(engine.LoadProgramAst(program.value()).ok());
  ASSERT_TRUE(engine.AddFact("input", {"00"}).ok());
  ASSERT_TRUE(engine.AddFact("input", {"111"}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  auto rows = engine.Query("output");
  ASSERT_TRUE(rows.ok());
  std::set<std::string> outputs;
  for (const RenderedRow& row : rows.value()) {
    std::string rendered = row[0];
    // Strip the tape padding exactly as Simulate does: gamma_k appends a
    // blank per right move, and gamma_2 extracts the whole tape.
    while (!rendered.empty() && rendered.back() == '_') rendered.pop_back();
    outputs.insert(rendered);
  }
  EXPECT_TRUE(outputs.count("11"));
  EXPECT_TRUE(outputs.count("000"));
}

TEST(TmToSequenceDatalog, DivergingMachineHasInfiniteFixpoint) {
  // Theorem 2: the fixpoint is infinite iff the machine diverges. Build
  // a machine that runs right forever: evaluation must exhaust budgets,
  // with ever-longer configuration sequences being created.
  Engine engine;
  tm::TuringMachine m;
  m.name = "runner";
  Symbol one = engine.symbols()->Intern("1");
  Symbol blank = engine.symbols()->Intern("_");
  Symbol marker = engine.symbols()->Intern("|-");
  Symbol q0 = engine.symbols()->Intern("q0");
  Symbol qrun = engine.symbols()->Intern("qrun");
  Symbol qh = engine.symbols()->Intern("qh");
  m.initial_state = q0;
  m.blank = blank;
  m.left_marker = marker;
  m.states = {q0, qrun, qh};
  m.halting_states = {qh};
  m.tape_alphabet = {one, blank, marker};
  m.delta[{q0, marker}] = {qrun, marker, tm::TmMove::kRight};
  m.delta[{qrun, one}] = {qrun, one, tm::TmMove::kRight};
  m.delta[{qrun, blank}] = {qrun, one, tm::TmMove::kRight};  // forever
  ASSERT_TRUE(m.Validate().ok());

  auto program = translate::TmToSequenceDatalog(m, engine.pool(), "input",
                                                "output");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(engine.LoadProgramAst(program.value()).ok());
  ASSERT_TRUE(engine.AddFact("input", {"1"}).ok());
  eval::EvalOptions options;
  options.limits.max_iterations = 300;
  options.limits.max_domain_sequences = 50000;
  eval::EvalOutcome outcome = engine.Evaluate(options);
  EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted);
  // No output fact is ever derived.
  auto rows = engine.Query("output");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

}  // namespace
}  // namespace seqlog
