// The serving tier: wire protocol units, the loopback server end to
// end, snapshot pinning, deadlines, admission control, graceful drain,
// and concurrent clients (the tsan job runs this suite, so the
// concurrent test doubles as the data-race probe for Server's
// engine-mutex / snapshot-pinning discipline).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/programs.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/stats.h"

namespace seqlog {
namespace serve {
namespace {

// ---------------------------------------------------------------------
// Protocol units (no sockets).
// ---------------------------------------------------------------------

TEST(Protocol, ParsesEveryVerb) {
  Result<Request> r = ParseRequest("PREPARE q ?- suffix($1).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verb, Verb::kPrepare);
  EXPECT_EQ(r->name, "q");
  EXPECT_EQ(r->goal, "?- suffix($1).");

  r = ParseRequest("BIND q 2 acgt");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verb, Verb::kBind);
  EXPECT_EQ(r->index, 2u);
  ASSERT_EQ(r->values.size(), 1u);
  EXPECT_EQ(r->values[0], "acgt");

  r = ParseRequest("EXEC q acgt eps");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verb, Verb::kExec);
  ASSERT_EQ(r->values.size(), 2u);
  EXPECT_EQ(r->values[1], "");  // eps decodes to the empty sequence

  r = ParseRequest("BATCH q 32");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verb, Verb::kBatch);
  EXPECT_EQ(r->count, 32u);

  r = ParseRequest("DEADLINE 250");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verb, Verb::kDeadline);
  EXPECT_EQ(r->millis, 250u);

  EXPECT_EQ(ParseRequest("STATS")->verb, Verb::kStats);
  EXPECT_EQ(ParseRequest("HEALTH")->verb, Verb::kHealth);
  EXPECT_EQ(ParseRequest("PUBLISH")->verb, Verb::kPublish);
  EXPECT_EQ(ParseRequest("QUIT")->verb, Verb::kQuit);

  r = ParseRequest("FACT r acgt");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verb, Verb::kFact);
  EXPECT_EQ(r->name, "r");

  r = ParseRequest("INGEST doc 128");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verb, Verb::kIngest);
  EXPECT_EQ(r->name, "doc");
  EXPECT_EQ(r->count, 128u);

  // Trailing carriage returns (telnet) are tolerated.
  EXPECT_TRUE(ParseRequest("HEALTH\r").ok());
}

TEST(Protocol, RejectsMalformedRequests) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("NOSUCH x").ok());
  EXPECT_FALSE(ParseRequest("PREPARE q").ok());        // missing goal
  EXPECT_FALSE(ParseRequest("BIND q x acgt").ok());    // bad index
  EXPECT_FALSE(ParseRequest("BIND q 0 acgt").ok());    // 1-based
  EXPECT_FALSE(ParseRequest("BATCH q").ok());          // missing count
  EXPECT_FALSE(ParseRequest("BATCH q -3").ok());
  EXPECT_FALSE(ParseRequest("INGEST r").ok());  // missing count
  EXPECT_FALSE(ParseRequest("INGEST r x").ok());
  EXPECT_FALSE(ParseRequest("STATS now").ok());
}

TEST(Protocol, ValueEncodingRoundTrips) {
  EXPECT_EQ(EncodeValue(""), "eps");
  EXPECT_EQ(DecodeValue("eps"), "");
  EXPECT_EQ(EncodeValue("acgt"), "acgt");
  EXPECT_EQ(DecodeValue("acgt"), "acgt");
  std::vector<std::string> values = SplitValues("acgt eps  gg");
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[1], "");
}

TEST(Protocol, ErrorRepliesReuseDiagnosticCodes) {
  // Analysis-family statuses surface the engine's own SL codes; the
  // serving block is SL-E1xx.
  EXPECT_EQ(WireCode(Status::InvalidArgument("x")), "SL-E001");
  EXPECT_EQ(WireCode(Status::FailedPrecondition("x")), "SL-E010");
  EXPECT_EQ(WireCode(Status::ResourceExhausted("x")), kCodeDeadline);
  EXPECT_EQ(ErrorReply(kCodeOverloaded, "queue full"),
            "ERR SL-E102 queue full");
  // Multi-line messages flatten to one wire line.
  EXPECT_EQ(ErrorReply(kCodeBadRequest, "a\nb"), "ERR SL-E100 a; b");
}

TEST(LatencyHistogram, PercentilesApproximateTheSamples) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.Record(100.0);
  h.Record(100000.0);
  EXPECT_EQ(h.count(), 100u);
  // Log-bucketed: ~±9% relative error.
  EXPECT_NEAR(h.PercentileMicros(50), 100.0, 10.0);
  EXPECT_NEAR(h.PercentileMicros(95), 100.0, 10.0);
  EXPECT_GT(h.PercentileMicros(100), 90000.0);
  EXPECT_NEAR(h.mean_micros(), 1099.0, 1.0);

  LatencyHistogram other;
  other.Record(100.0);
  other.MergeFrom(h);
  EXPECT_EQ(other.count(), 101u);
}

// ---------------------------------------------------------------------
// End-to-end over loopback.
// ---------------------------------------------------------------------

/// A suffix-membership server on an ephemeral port.
class ServeTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    ASSERT_TRUE(engine_.LoadProgram(programs::kSuffixes).ok());
    ASSERT_TRUE(engine_.AddFact("r", {"acgtacgt"}).ok());
    ASSERT_TRUE(engine_.AddFact("r", {"ttttgggg"}).ok());
    options.port = 0;
    server_ = std::make_unique<Server>(&engine_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  TextClient Connect() {
    TextClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  Engine engine_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeTest, PrepareBindExecRoundTrip) {
  StartServer();
  TextClient client = Connect();

  Result<Reply> reply = client.Roundtrip("PREPARE q ?- suffix($1).");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply->ok()) << reply->header;
  EXPECT_NE(reply->header.find("params=1"), std::string::npos);
  EXPECT_NE(reply->header.find("adornment=b"), std::string::npos);

  // Inline values.
  reply = client.Roundtrip("EXEC q acgt");
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(reply->ok()) << reply->header;
  ASSERT_EQ(reply->body.size(), 1u);
  EXPECT_EQ(reply->body[0], "ROW acgt");

  // Session BIND state.
  ASSERT_TRUE(client.Roundtrip("BIND q 1 gggg")->ok());
  reply = client.Roundtrip("EXEC q");
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->body.size(), 1u);
  EXPECT_EQ(reply->body[0], "ROW gggg");

  // A miss: zero rows.
  reply = client.Roundtrip("EXEC q zz");
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->ok());
  EXPECT_TRUE(reply->body.empty());

  // The empty sequence is a suffix of everything in r.
  reply = client.Roundtrip("EXEC q eps");
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->body.size(), 1u);
  EXPECT_EQ(reply->body[0], "ROW eps");

  EXPECT_TRUE(client.Roundtrip("QUIT")->ok());
}

TEST_F(ServeTest, BatchVerbAnswersPerItem) {
  StartServer();
  TextClient client = Connect();
  ASSERT_TRUE(client.Roundtrip("PREPARE q ?- suffix($1).")->ok());

  Result<Reply> reply = client.Roundtrip(
      "BATCH q 4", {"acgt", "zz", "gggg", "acgt zz"});
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply->ok()) << reply->header;
  EXPECT_NE(reply->header.find("items=4"), std::string::npos);
  EXPECT_NE(reply->header.find("rows=2"), std::string::npos);
  EXPECT_NE(reply->header.find("runs=1"), std::string::npos);
  ASSERT_EQ(reply->body.size(), 6u);  // 4 ITEM + 2 ROW lines
  EXPECT_EQ(reply->body[0], "ITEM 0 rows=1");
  EXPECT_EQ(reply->body[1], "ROW acgt");
  EXPECT_EQ(reply->body[2], "ITEM 1 rows=0");
  EXPECT_EQ(reply->body[3], "ITEM 2 rows=1");
  EXPECT_EQ(reply->body[4], "ROW gggg");
  // Wrong arity: a per-item error, not a batch failure.
  EXPECT_EQ(reply->body[5].rfind("ITEM 3 ERR ", 0), 0u) << reply->body[5];
}

TEST_F(ServeTest, ErrorsCarryStableCodes) {
  StartServer();
  TextClient client = Connect();

  Result<Reply> reply = client.Roundtrip("EXEC nosuch acgt");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->error_code(), kCodeUnknownStatement);

  reply = client.Roundtrip("GIBBERISH");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->error_code(), kCodeBadRequest);

  // A goal that cannot be prepared: parse-family code.
  reply = client.Roundtrip("PREPARE bad ?- nope(");
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->ok());
  EXPECT_EQ(reply->error_code(), "SL-E001");
}

TEST_F(ServeTest, RequestsPinTheLatestPublishedSnapshot) {
  // Legacy write path (live_ingest off): FACT mutates the engine inline
  // and visibility is gated on an explicit PUBLISH — the deterministic
  // form of the snapshot-pinning contract (with live ingest on, the
  // republisher may publish between the two EXECs on its own cadence).
  ServerOptions options;
  options.live_ingest = false;
  StartServer(options);
  TextClient client = Connect();
  ASSERT_TRUE(client.Roundtrip("PREPARE q ?- suffix($1).")->ok());

  // Not yet a suffix of anything.
  EXPECT_TRUE(client.Roundtrip("EXEC q zzz")->body.empty());

  // FACT alone mutates the live EDB, not the served snapshot.
  ASSERT_TRUE(client.Roundtrip("FACT r zzzz")->ok());
  EXPECT_TRUE(client.Roundtrip("EXEC q zzz")->body.empty());

  // PUBLISH makes it visible to subsequent requests.
  Result<Reply> published = client.Roundtrip("PUBLISH");
  ASSERT_TRUE(published.ok());
  ASSERT_TRUE(published->ok()) << published->header;
  Result<Reply> reply = client.Roundtrip("EXEC q zzz");
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->body.size(), 1u);
  EXPECT_EQ(reply->body[0], "ROW zzz");
}

TEST_F(ServeTest, LiveIngestStagesFactsAndPublishForcesTheDrain) {
  StartServer();  // live ingest is the default
  TextClient client = Connect();
  ASSERT_TRUE(client.Roundtrip("PREPARE q ?- suffix($1).")->ok());

  Result<Reply> fact = client.Roundtrip("FACT r zzzz");
  ASSERT_TRUE(fact.ok());
  ASSERT_TRUE(fact->ok()) << fact->header;
  // The live reply reports the staging depth, not a mutation.
  EXPECT_EQ(fact->header.rfind("OK fact queued depth=", 0), 0u)
      << fact->header;

  // PUBLISH forces drain + resaturation + republish: the fact is
  // visible afterwards, deterministically.
  Result<Reply> published = client.Roundtrip("PUBLISH");
  ASSERT_TRUE(published.ok());
  ASSERT_TRUE(published->ok()) << published->header;
  EXPECT_EQ(published->header.rfind("OK snapshot=", 0), 0u)
      << published->header;
  Result<Reply> reply = client.Roundtrip("EXEC q zzz");
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->body.size(), 1u);
  EXPECT_EQ(reply->body[0], "ROW zzz");
}

TEST_F(ServeTest, IngestVerbStagesABatch) {
  StartServer();
  TextClient client = Connect();
  ASSERT_TRUE(client.Roundtrip("PREPARE q ?- suffix($1).")->ok());

  Result<Reply> reply =
      client.Roundtrip("INGEST r 3", {"zzzz", "yy", "xx"});
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply->ok()) << reply->header;
  EXPECT_EQ(reply->header.rfind("OK ingested=3", 0), 0u) << reply->header;

  ASSERT_TRUE(client.Roundtrip("PUBLISH")->ok());
  for (const char* probe : {"zzz", "y", "x"}) {
    Result<Reply> exec =
        client.Roundtrip(std::string("EXEC q ") + probe);
    ASSERT_TRUE(exec.ok());
    EXPECT_EQ(exec->body.size(), 1u) << probe;
  }

  // A malformed batch fails fast but stays in protocol framing.
  reply = client.Roundtrip("INGEST r 2", {"ok but wrong arity", "gg"});
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->ok());
  // The connection survives: the server consumed all count lines.
  EXPECT_TRUE(client.Roundtrip("HEALTH")->ok());
}

TEST_F(ServeTest, LiveIngestPublishesOnItsOwnCadence) {
  ServerOptions options;
  options.ingest_cadence_ms = 5;
  StartServer(options);
  TextClient client = Connect();
  ASSERT_TRUE(client.Roundtrip("PREPARE q ?- suffix($1).")->ok());
  ASSERT_TRUE(client.Roundtrip("FACT r zzzz")->ok());

  // No explicit PUBLISH: the republisher drains on its cadence. Poll
  // with a deadline; each EXEC pins the then-latest snapshot.
  bool visible = false;
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    Result<Reply> reply = client.Roundtrip("EXEC q zzz");
    ASSERT_TRUE(reply.ok());
    if (!reply->body.empty()) {
      visible = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(visible);
}

TEST_F(ServeTest, StatsReportIngestCounters) {
  StartServer();
  TextClient client = Connect();
  ASSERT_TRUE(client.Roundtrip("FACT r zzzz")->ok());
  ASSERT_TRUE(client.Roundtrip("PUBLISH")->ok());

  Result<Reply> stats = client.Roundtrip("STATS");
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->ok());
  bool saw_depth = false, saw_ingested = false, saw_rounds = false,
       saw_staleness = false, saw_rate = false;
  for (const std::string& line : stats->body) {
    if (line.rfind("STAT ingest_queue_depth ", 0) == 0) saw_depth = true;
    if (line == "STAT ingested_facts 1") saw_ingested = true;
    if (line.rfind("STAT resaturate_rounds ", 0) == 0) saw_rounds = true;
    if (line.rfind("STAT snapshot_staleness_ms ", 0) == 0) {
      saw_staleness = true;
    }
    if (line.rfind("STAT ingest_facts_per_sec ", 0) == 0) saw_rate = true;
  }
  EXPECT_TRUE(saw_depth);
  EXPECT_TRUE(saw_ingested);
  EXPECT_TRUE(saw_rounds);
  EXPECT_TRUE(saw_staleness);
  EXPECT_TRUE(saw_rate);
}

/// The PR 7 write-stall regression: a drain cycle chewing through a
/// large staged batch must not block concurrent PREPARE/EXEC — reads
/// pin snapshots and PREPARE takes no engine mutex, so sessions stay
/// responsive while the republisher is mid-resaturation. A regression
/// deadlocks or serialises here and trips the test timeout.
TEST_F(ServeTest, SlowPublishDoesNotBlockConcurrentReads) {
  ServerOptions options;
  options.sessions = 4;
  StartServer(options);
  {
    TextClient setup = Connect();
    ASSERT_TRUE(setup.Roundtrip("PREPARE q ?- suffix($1).")->ok());
    // Stage a batch big enough that its resaturation does real work.
    std::vector<std::string> lines;
    for (int i = 0; i < 400; ++i) {
      std::string value = "zz";
      value.append(static_cast<size_t>(1 + i % 17), 'g');
      value += std::to_string(i);
      lines.push_back(std::move(value));
    }
    Result<Reply> reply = setup.Roundtrip(
        "INGEST r " + std::to_string(lines.size()), lines);
    ASSERT_TRUE(reply.ok());
    ASSERT_TRUE(reply->ok()) << reply->header;
  }

  std::atomic<size_t> failures{0};
  std::thread publisher([this, &failures] {
    TextClient writer;
    if (!writer.Connect("127.0.0.1", server_->port()).ok()) {
      failures.fetch_add(1);
      return;
    }
    if (!writer.Roundtrip("PUBLISH")->ok()) failures.fetch_add(1);
  });
  // While the forced drain runs, fresh PREPAREs and EXECs must keep
  // completing on other sessions.
  TextClient reader = Connect();
  for (int i = 0; i < 20; ++i) {
    std::string name = "p";
    name += std::to_string(i);
    if (!reader.Roundtrip("PREPARE " + name + " ?- suffix($1).")->ok()) {
      failures.fetch_add(1);
    }
    if (!reader.Roundtrip("EXEC " + name + " acgt")->ok()) {
      failures.fetch_add(1);
    }
  }
  publisher.join();
  EXPECT_EQ(failures.load(), 0u);
}

TEST_F(ServeTest, DeadlineCutsOffDivergentPrograms) {
  // kEcho has an infinite least fixpoint and its recursion position is
  // not bindable, so the demanded evaluation diverges — only the
  // deadline stops it.
  ASSERT_TRUE(engine_.LoadProgram(programs::kEcho).ok());
  ASSERT_TRUE(engine_.AddFact("r", {"acgt"}).ok());
  server_ = std::make_unique<Server>(&engine_, ServerOptions{});
  ASSERT_TRUE(server_->Start().ok());
  TextClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());

  ASSERT_TRUE(client.Roundtrip("PREPARE e ?- answer($1, Y).")->ok());
  ASSERT_TRUE(client.Roundtrip("DEADLINE 25")->ok());
  Result<Reply> reply = client.Roundtrip("EXEC e acgt");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->ok());
  EXPECT_EQ(reply->error_code(), kCodeDeadline) << reply->header;
  EXPECT_GE(server_->stats().deadline_exceeded.load(), 1u);
}

TEST_F(ServeTest, AdmissionControlRefusesWhenQueueIsFull) {
  ServerOptions options;
  options.max_pending = 0;  // every connection is refused at the door
  StartServer(options);
  TextClient client = Connect();
  Result<std::string> line = client.RecvLine();
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(line->rfind("ERR SL-E102", 0), 0u) << *line;
  EXPECT_GE(server_->stats().connections_rejected.load(), 1u);
}

TEST_F(ServeTest, StatsVerbAndHealthReport) {
  StartServer();
  TextClient client = Connect();
  ASSERT_TRUE(client.Roundtrip("PREPARE q ?- suffix($1).")->ok());
  ASSERT_TRUE(client.Roundtrip("EXEC q acgt")->ok());

  Result<Reply> health = client.Roundtrip("HEALTH");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->header.rfind("OK serving snapshot=", 0), 0u)
      << health->header;

  Result<Reply> stats = client.Roundtrip("STATS");
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->ok());
  EXPECT_FALSE(stats->body.empty());
  bool saw_requests = false, saw_p99 = false, saw_statements = false;
  for (const std::string& line : stats->body) {
    EXPECT_EQ(line.rfind("STAT ", 0), 0u) << line;
    if (line.rfind("STAT requests ", 0) == 0) saw_requests = true;
    if (line.rfind("STAT request_p99_us ", 0) == 0) saw_p99 = true;
    if (line == "STAT statements 1") saw_statements = true;
  }
  EXPECT_TRUE(saw_requests);
  EXPECT_TRUE(saw_p99);
  EXPECT_TRUE(saw_statements);
}

TEST_F(ServeTest, GracefulDrainCompletesAndCloses) {
  StartServer();
  TextClient client = Connect();
  ASSERT_TRUE(client.Roundtrip("PREPARE q ?- suffix($1).")->ok());
  ASSERT_TRUE(client.Roundtrip("EXEC q acgt")->ok());

  server_->Shutdown();
  server_->Wait();
  // The idle connection was closed by the drain.
  Result<std::string> line = client.RecvLine();
  EXPECT_FALSE(line.ok());
  EXPECT_FALSE(server_->stats().requests.load() == 0);
}

/// Many clients hammer EXEC/BATCH while another churns FACT+PUBLISH:
/// the tsan probe for snapshot pinning vs engine mutation.
TEST_F(ServeTest, ConcurrentClientsWithPublishChurn) {
  ServerOptions options;
  options.sessions = 4;
  StartServer(options);
  {
    TextClient setup = Connect();
    ASSERT_TRUE(setup.Roundtrip("PREPARE q ?- suffix($1).")->ok());
  }

  constexpr size_t kClients = 6;
  constexpr size_t kRequests = 15;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients + 1);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([this, c, &failures] {
      TextClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (size_t r = 0; r < kRequests; ++r) {
        Result<Reply> reply =
            c % 2 == 0
                ? client.Roundtrip("EXEC q acgt")
                : client.Roundtrip("BATCH q 2", {"gggg", "tt"});
        if (!reply.ok() || !reply.value().ok()) failures.fetch_add(1);
      }
    });
  }
  clients.emplace_back([this, &failures] {
    TextClient writer;
    if (!writer.Connect("127.0.0.1", server_->port()).ok()) {
      failures.fetch_add(1);
      return;
    }
    for (size_t i = 0; i < 10; ++i) {
      if (!writer.Roundtrip("FACT r acgtacgt")->ok()) failures.fetch_add(1);
      if (!writer.Roundtrip("PUBLISH")->ok()) failures.fetch_add(1);
    }
  });
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GE(server_->stats().requests.load(),
            kClients * kRequests);
}

}  // namespace
}  // namespace serve
}  // namespace seqlog
