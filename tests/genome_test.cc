// Tests for the molecular-biology machines of Example 7.1.
#include <gtest/gtest.h>

#include "transducer/genome.h"

namespace seqlog {
namespace transducer {
namespace {

class GenomeTest : public ::testing::Test {
 protected:
  SeqId Seq(std::string_view text) {
    return pool_.FromChars(text, &symbols_);
  }
  std::string Apply(const TransducerPtr& t, std::string_view in) {
    Result<SeqId> out = t->Apply(std::vector<SeqId>{Seq(in)}, &pool_);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return out.ok() ? pool_.Render(out.value(), symbols_) : "<error>";
  }
  SymbolTable symbols_;
  SequencePool pool_;
};

TEST_F(GenomeTest, TranscriptionMatchesThePaper) {
  auto t = MakeTranscribe("transcribe", &symbols_);
  ASSERT_TRUE(t.ok());
  // Section 7.1: acgtacgt -> ugcaugca.
  EXPECT_EQ(Apply(*t, "acgtacgt"), "ugcaugca");
  EXPECT_EQ(Apply(*t, ""), "");
  EXPECT_EQ(Apply(*t, "aaaa"), "uuuu");
}

TEST_F(GenomeTest, TranscriptionRejectsNonDna) {
  auto t = MakeTranscribe("transcribe", &symbols_);
  ASSERT_TRUE(t.ok());
  auto out = (*t)->Apply(std::vector<SeqId>{Seq("acgu")}, &pool_);
  EXPECT_EQ(out.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(GenomeTest, ComplementIsAnInvolution) {
  auto t = MakeDnaComplement("comp", &symbols_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(Apply(*t, "acgt"), "tgca");
  for (const char* s : {"a", "ttaacc", "gattaca"}) {
    SeqId once = (*t)->Apply(std::vector<SeqId>{Seq(s)}, &pool_).value();
    SeqId twice = (*t)->Apply(std::vector<SeqId>{once}, &pool_).value();
    EXPECT_EQ(pool_.Render(twice, symbols_), s);
  }
}

TEST_F(GenomeTest, TranslationUsesTheGeneticCode) {
  auto t = MakeTranslate("translate", &symbols_);
  ASSERT_TRUE(t.ok());
  // The paper's example: gau and gac both code for aspartic acid D;
  // gaugacuuacac -> codons gau gac uua cac -> D D L H.
  EXPECT_EQ(Apply(*t, "gaugacuuacac"), "DDLH");
  // Start codon aug -> M; stop codon uaa -> '*'.
  EXPECT_EQ(Apply(*t, "auguaa"), "M*");
  // Trailing partial codons are dropped.
  EXPECT_EQ(Apply(*t, "gauga"), "D");
}

TEST_F(GenomeTest, AllSixtyFourCodonsTranslate) {
  auto t = MakeTranslate("translate", &symbols_);
  ASSERT_TRUE(t.ok());
  const char* bases = "ucag";
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      for (int k = 0; k < 4; ++k) {
        std::string codon = {bases[i], bases[j], bases[k]};
        std::string aa = Apply(*t, codon);
        EXPECT_EQ(aa.size(), 1u) << codon;
      }
    }
  }
}

TEST_F(GenomeTest, DnaReverse) {
  auto t = MakeDnaReverse("rev", &symbols_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(Apply(*t, "gattaca"), "acattag");
}

TEST_F(GenomeTest, ReverseComplementComposition) {
  // The classic genomics operation: reverse complement, as a two-stage
  // manual composition.
  auto comp = MakeDnaComplement("comp", &symbols_);
  auto rev = MakeDnaReverse("rev", &symbols_);
  ASSERT_TRUE(comp.ok());
  ASSERT_TRUE(rev.ok());
  SeqId c = (*comp)->Apply(std::vector<SeqId>{Seq("gattaca")}, &pool_)
                .value();
  SeqId rc = (*rev)->Apply(std::vector<SeqId>{c}, &pool_).value();
  EXPECT_EQ(pool_.Render(rc, symbols_), "tgtaatc");
}

}  // namespace
}  // namespace transducer
}  // namespace seqlog
