// Live-ingest subsystem (src/ivm/): the bounded staging queue, the
// incrementally maintained model, Engine's staging/drain semantics and
// the Republisher drain loop.
//
// The parity tests are the soundness check for Evaluator::Resaturate:
// any randomized insertion schedule, applied incrementally batch by
// batch, must land on exactly the model a cold evaluation over the
// union computes — same rows for every predicate, same extended active
// domain size. Run under 1, 2 and 8 evaluation threads so the tsan job
// doubles as the race probe for delta seeding + parallel rounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/programs.h"
#include "ivm/incremental_model.h"
#include "ivm/ingest_queue.h"
#include "ivm/republisher.h"
#include "transducer/genome.h"

namespace seqlog {
namespace {

// ---------------------------------------------------------------------
// IngestQueue units.
// ---------------------------------------------------------------------

ivm::PendingFact Fact(PredId pred, std::vector<SeqId> args) {
  ivm::PendingFact f;
  f.pred = pred;
  f.args = std::move(args);
  return f;
}

TEST(IngestQueue, FifoPushAndDrain) {
  ivm::IngestQueue queue(8);
  EXPECT_EQ(queue.depth(), 0u);
  ASSERT_TRUE(queue.TryPush(Fact(1, {10})).ok());
  ASSERT_TRUE(queue.TryPush(Fact(2, {20})).ok());
  ASSERT_TRUE(queue.TryPush(Fact(1, {30})).ok());
  EXPECT_EQ(queue.depth(), 3u);
  EXPECT_EQ(queue.enqueued(), 3u);

  std::vector<ivm::PendingFact> out;
  EXPECT_EQ(queue.DrainTo(&out), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].pred, 1u);
  EXPECT_EQ(out[0].args, std::vector<SeqId>{10});
  EXPECT_EQ(out[1].pred, 2u);
  EXPECT_EQ(out[2].args, std::vector<SeqId>{30});
  EXPECT_EQ(queue.depth(), 0u);
  // A second drain finds nothing and appends nothing.
  EXPECT_EQ(queue.DrainTo(&out), 0u);
  EXPECT_EQ(out.size(), 3u);
}

TEST(IngestQueue, BackpressureWhenFull) {
  ivm::IngestQueue queue(2);
  ASSERT_TRUE(queue.TryPush(Fact(1, {1})).ok());
  ASSERT_TRUE(queue.TryPush(Fact(1, {2})).ok());
  Status full = queue.TryPush(Fact(1, {3}));
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.rejected(), 1u);
  EXPECT_EQ(queue.depth(), 2u);

  // Draining frees capacity again.
  std::vector<ivm::PendingFact> out;
  queue.DrainTo(&out);
  EXPECT_TRUE(queue.TryPush(Fact(1, {3})).ok());
}

TEST(IngestQueue, CloseRejectsFurtherPushes) {
  ivm::IngestQueue queue(4);
  ASSERT_TRUE(queue.TryPush(Fact(1, {1})).ok());
  queue.Close();
  EXPECT_TRUE(queue.closed());
  Status closed = queue.TryPush(Fact(1, {2}));
  EXPECT_EQ(closed.code(), StatusCode::kFailedPrecondition);
  // Shutdown still drains what was staged before the close.
  std::vector<ivm::PendingFact> out;
  EXPECT_EQ(queue.DrainTo(&out), 1u);
}

TEST(IngestQueue, WaitForWorkReturnsOnThresholdAndWake) {
  ivm::IngestQueue queue(16);
  // Threshold satisfied mid-wait by a producer thread.
  std::thread producer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(queue.TryPush(Fact(1, {1})).ok());
    ASSERT_TRUE(queue.TryPush(Fact(1, {2})).ok());
  });
  size_t depth = queue.WaitForWork(2, std::chrono::milliseconds(5000));
  producer.join();
  EXPECT_GE(depth, 2u);

  // Wake() releases a sleeper without any push.
  std::thread waker([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.Wake();
  });
  auto t0 = std::chrono::steady_clock::now();
  queue.WaitForWork(100, std::chrono::milliseconds(5000));
  waker.join();
  EXPECT_LT(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(4000));
}

TEST(IngestQueue, OldestPendingTracksStagedAge) {
  ivm::IngestQueue queue(4);
  EXPECT_EQ(queue.OldestPendingMillis(), 0.0);
  ASSERT_TRUE(queue.TryPush(Fact(1, {1})).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(queue.OldestPendingMillis(), 0.0);
  std::vector<ivm::PendingFact> out;
  queue.DrainTo(&out);
  EXPECT_EQ(queue.OldestPendingMillis(), 0.0);
}

// ---------------------------------------------------------------------
// Parity: incremental Apply == cold Evaluate over the union.
// ---------------------------------------------------------------------

struct ParityWorkload {
  const char* name;
  const char* program;
  const char* fact_pred;
  std::vector<const char*> check_preds;
  unsigned fact_seed;
  size_t fact_count;
  size_t fact_len;
  const char* alphabet;
};

std::vector<ParityWorkload> ParityWorkloads() {
  return {
      {"suffix", programs::kSuffixes, "r", {"suffix"}, 5, 24, 16, "acgt"},
      {"genome", programs::kGenomePipeline, "dnaseq",
       {"rnaseq", "proteinseq"}, 7, 48, 24, "acgt"},
      {"text", programs::kTextIndex, "doc",
       {"occurs", "shared", "shared4", "hit"}, 11, 6, 8, "ab"},
  };
}

std::vector<std::string> RandomSeqs(unsigned seed, size_t count,
                                    size_t len, std::string_view alphabet) {
  std::mt19937 rng(seed);
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string s;
    s.reserve(len);
    for (size_t j = 0; j < len; ++j) {
      s += alphabet[rng() % alphabet.size()];
    }
    out.push_back(std::move(s));
  }
  return out;
}

void SetupEngine(Engine* engine, const ParityWorkload& w) {
  if (std::string_view(w.fact_pred) == "dnaseq") {
    auto transcribe =
        transducer::MakeTranscribe("transcribe", engine->symbols());
    ASSERT_TRUE(transcribe.ok());
    ASSERT_TRUE(engine->RegisterTransducer(transcribe.value()).ok());
    auto translate =
        transducer::MakeTranslate("translate", engine->symbols());
    ASSERT_TRUE(translate.ok());
    ASSERT_TRUE(engine->RegisterTransducer(translate.value()).ok());
  }
  ASSERT_TRUE(engine->LoadProgram(w.program).ok());
}

/// One randomized schedule: half the facts cold, the rest drained in
/// random batch sizes (with re-staged duplicates sprinkled in — no-op
/// deltas must not disturb the fixpoint), then compare against one cold
/// evaluation over everything.
void CheckParity(const ParityWorkload& w, unsigned schedule_seed,
                 size_t threads) {
  SCOPED_TRACE(std::string(w.name) + " seed=" +
               std::to_string(schedule_seed) + " threads=" +
               std::to_string(threads));
  std::vector<std::string> facts =
      RandomSeqs(w.fact_seed, w.fact_count, w.fact_len, w.alphabet);
  std::mt19937 rng(schedule_seed);
  std::shuffle(facts.begin(), facts.end(), rng);

  eval::EvalOptions options;
  options.num_threads = threads;

  Engine cold;
  SetupEngine(&cold, w);
  for (const std::string& f : facts) {
    ASSERT_TRUE(cold.AddFact(w.fact_pred, {f}).ok());
  }
  eval::EvalOutcome cold_out = cold.Evaluate(options);
  ASSERT_TRUE(cold_out.status.ok()) << cold_out.status.ToString();

  Engine inc;
  SetupEngine(&inc, w);
  const size_t initial = facts.size() / 2;
  for (size_t i = 0; i < initial; ++i) {
    ASSERT_TRUE(inc.AddFact(w.fact_pred, {facts[i]}).ok());
  }
  eval::EvalOutcome out = inc.Evaluate(options);
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();

  size_t at = initial;
  while (at < facts.size()) {
    const size_t batch = 1 + rng() % 8;
    for (size_t b = 0; b < batch && at < facts.size(); ++b, ++at) {
      ASSERT_TRUE(inc.AddFact(w.fact_pred, {facts[at]}).ok());
      if (rng() % 4 == 0) {
        // Re-stage an already-known fact: must be dropped at the seed.
        ASSERT_TRUE(
            inc.AddFact(w.fact_pred, {facts[rng() % at]}).ok());
      }
    }
    out = inc.DrainIngest(options);
    ASSERT_TRUE(out.status.ok()) << out.status.ToString();
    EXPECT_FALSE(out.stats.cold_fallback);
  }

  ASSERT_TRUE(inc.live_model().built());
  ASSERT_TRUE(cold.live_model().built());
  EXPECT_EQ(inc.live_model().model()->TotalFacts(),
            cold.live_model().model()->TotalFacts());
  EXPECT_EQ(inc.live_model().domain()->size(),
            cold.live_model().domain()->size());
  for (const char* pred : w.check_preds) {
    Result<std::vector<RenderedRow>> want = cold.Query(pred);
    Result<std::vector<RenderedRow>> got = inc.Query(pred);
    ASSERT_TRUE(want.ok()) << pred;
    ASSERT_TRUE(got.ok()) << pred;
    EXPECT_EQ(got.value(), want.value()) << pred;
  }
}

TEST(IncrementalModelParity, RandomSchedulesMatchColdEvaluation) {
  for (const ParityWorkload& w : ParityWorkloads()) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      for (unsigned seed : {1u, 2u, 3u}) {
        CheckParity(w, seed, threads);
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST(IncrementalModelParity, OneFactAtATime) {
  // The finest-grained schedule: every insert is its own drain.
  ParityWorkload w{"suffix", programs::kSuffixes, "r",
                   {"suffix"}, 5, 12, 12, "acgt"};
  std::vector<std::string> facts =
      RandomSeqs(w.fact_seed, w.fact_count, w.fact_len, w.alphabet);

  Engine cold;
  SetupEngine(&cold, w);
  for (const std::string& f : facts) {
    ASSERT_TRUE(cold.AddFact("r", {f}).ok());
  }
  ASSERT_TRUE(cold.Evaluate().status.ok());

  Engine inc;
  SetupEngine(&inc, w);
  ASSERT_TRUE(inc.AddFact("r", {facts[0]}).ok());
  ASSERT_TRUE(inc.Evaluate().status.ok());
  for (size_t i = 1; i < facts.size(); ++i) {
    ASSERT_TRUE(inc.AddFact("r", {facts[i]}).ok());
    eval::EvalOutcome out = inc.DrainIngest();
    ASSERT_TRUE(out.status.ok());
  }
  EXPECT_EQ(inc.Query("suffix").value(), cold.Query("suffix").value());
  EXPECT_EQ(inc.live_model().domain()->size(),
            cold.live_model().domain()->size());
}

TEST(IncrementalModel, ApplyRequiresBuild) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  eval::Evaluator evaluator(engine.catalog(), engine.pool(),
                            engine.registry());
  ivm::IncrementalModel model(&evaluator, engine.catalog());
  Database batch(engine.catalog());
  eval::EvalOutcome out = model.Apply(batch, {});
  EXPECT_EQ(out.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(model.built());
  EXPECT_EQ(model.model(), nullptr);
}

// ---------------------------------------------------------------------
// Engine staging and drain semantics.
// ---------------------------------------------------------------------

TEST(EngineIngest, PostFixpointFactsStageAndResaturate) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgt"}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());

  // Post-fixpoint AddFact goes to the EDB *and* the staging queue.
  ASSERT_TRUE(engine.AddFact("r", {"ttt"}).ok());
  EXPECT_EQ(engine.ingest_queue()->depth(), 1u);

  eval::EvalOutcome out = engine.DrainIngest();
  ASSERT_TRUE(out.status.ok());
  EXPECT_EQ(out.stats.ingested_facts, 1u);
  EXPECT_GE(out.stats.resaturate_rounds, 1u);
  EXPECT_FALSE(out.stats.cold_fallback);
  EXPECT_EQ(engine.ingest_queue()->depth(), 0u);

  Result<std::vector<RenderedRow>> rows = engine.Query("suffix");
  ASSERT_TRUE(rows.ok());
  bool saw_tt = false;
  for (const RenderedRow& row : rows.value()) {
    if (row.size() == 1 && row[0] == "tt") saw_tt = true;
  }
  EXPECT_TRUE(saw_tt);
}

TEST(EngineIngest, DuplicateFactsAreNotStaged) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgt"}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgt"}).ok());  // already present
  EXPECT_EQ(engine.ingest_queue()->depth(), 0u);
  eval::EvalOutcome out = engine.DrainIngest();
  ASSERT_TRUE(out.status.ok());
  EXPECT_EQ(out.stats.ingested_facts, 0u);
  EXPECT_EQ(out.stats.resaturate_rounds, 0u);
}

TEST(EngineIngest, EnqueueBeforeEvaluateFeedsTheColdRun) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  // No model yet: EnqueueFact stages without touching the EDB.
  ASSERT_TRUE(engine.EnqueueFact("r", {"acgt"}).ok());
  EXPECT_EQ(engine.ingest_queue()->depth(), 1u);
  // Evaluate flushes the queue into the EDB before the cold run.
  ASSERT_TRUE(engine.Evaluate().status.ok());
  EXPECT_EQ(engine.ingest_queue()->depth(), 0u);
  Result<std::vector<RenderedRow>> rows = engine.Query("suffix");
  ASSERT_TRUE(rows.ok());
  EXPECT_FALSE(rows.value().empty());
}

TEST(EngineIngest, DrainWithoutModelOnlyFeedsTheEdb) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.EnqueueFact("r", {"acgt"}).ok());
  eval::EvalOutcome out = engine.DrainIngest();
  ASSERT_TRUE(out.status.ok());
  EXPECT_EQ(out.stats.ingested_facts, 1u);
  EXPECT_FALSE(engine.live_model().built());
  // Snapshots see the fact even though no model exists.
  Snapshot snapshot = engine.PublishSnapshot();
  EXPECT_EQ(snapshot.TotalFacts(), 1u);
}

TEST(EngineIngest, ClearFactsFallsBackCold) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgt"}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());

  engine.ClearFacts();  // retraction: not expressible as a delta
  ASSERT_TRUE(engine.AddFact("r", {"gg"}).ok());
  eval::EvalOutcome out = engine.DrainIngest();
  ASSERT_TRUE(out.status.ok());
  EXPECT_TRUE(out.stats.cold_fallback);
  EXPECT_TRUE(engine.live_model().built());

  // The recomputed model is exactly the model of the post-clear EDB.
  Result<std::vector<RenderedRow>> rows = engine.Query("suffix");
  ASSERT_TRUE(rows.ok());
  std::vector<RenderedRow> want = {{""}, {"g"}, {"gg"}};
  EXPECT_EQ(rows.value(), want);
}

TEST(EngineIngest, LoadProgramInvalidatesButKeepsStagedFacts) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.EnqueueFact("r", {"acgt"}).ok());
  // A program swap must not lose staged writes — they are EDB facts in
  // flight, not derived state.
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  EXPECT_EQ(engine.ingest_queue()->depth(), 1u);
  ASSERT_TRUE(engine.Evaluate().status.ok());
  EXPECT_FALSE(engine.Query("suffix").value().empty());
}

// ---------------------------------------------------------------------
// Republisher.
// ---------------------------------------------------------------------

class RepublisherTest : public ::testing::Test {
 protected:
  void SetUpEngine() {
    ASSERT_TRUE(engine_.LoadProgram(programs::kSuffixes).ok());
    ASSERT_TRUE(engine_.AddFact("r", {"acgt"}).ok());
    ASSERT_TRUE(engine_.Evaluate().status.ok());
  }

  /// Polls until `done` or 5s — drain cycles run on another thread.
  template <typename F>
  bool WaitUntil(F done) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      if (done()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return done();
  }

  Engine engine_;
  std::atomic<uint64_t> hook_calls_{0};
  uint64_t last_hook_version_ = 0;  // written on the Republisher thread
};

TEST_F(RepublisherTest, ThresholdDrainPublishes) {
  SetUpEngine();
  ivm::RepublisherOptions options;
  options.cadence_ms = 60'000;  // only the threshold can trigger
  options.drain_threshold = 2;
  ivm::Republisher rep(&engine_, options, [this](const Snapshot& s) {
    last_hook_version_ = s.version();
    hook_calls_.fetch_add(1);
  });
  rep.Start();
  EXPECT_TRUE(rep.running());

  ASSERT_TRUE(engine_.EnqueueFact("r", {"tttt"}).ok());
  ASSERT_TRUE(engine_.EnqueueFact("r", {"gg"}).ok());
  EXPECT_TRUE(WaitUntil([&] { return rep.stats().publishes >= 1; }));
  rep.Stop();
  EXPECT_FALSE(rep.running());

  ivm::IngestStats stats = rep.stats();
  EXPECT_EQ(stats.ingested_facts, 2u);
  EXPECT_GE(stats.resaturate_rounds, 1u);
  EXPECT_EQ(stats.cold_fallbacks, 0u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GE(hook_calls_.load(), 1u);
  EXPECT_EQ(last_hook_version_, stats.last_version);

  // The drained facts reached the model incrementally.
  Result<std::vector<RenderedRow>> rows = engine_.Query("suffix");
  ASSERT_TRUE(rows.ok());
  bool saw_ttt = false;
  for (const RenderedRow& row : rows.value()) {
    if (row.size() == 1 && row[0] == "ttt") saw_ttt = true;
  }
  EXPECT_TRUE(saw_ttt);
}

TEST_F(RepublisherTest, CadenceDrainPublishes) {
  SetUpEngine();
  ivm::RepublisherOptions options;
  options.cadence_ms = 5;
  options.drain_threshold = 1000;  // only the cadence can trigger
  ivm::Republisher rep(&engine_, options,
                       [this](const Snapshot&) { hook_calls_.fetch_add(1); });
  rep.Start();
  ASSERT_TRUE(engine_.EnqueueFact("r", {"cc"}).ok());
  EXPECT_TRUE(WaitUntil([&] { return rep.stats().publishes >= 1; }));
  rep.Stop();
  EXPECT_EQ(rep.stats().ingested_facts, 1u);
}

TEST_F(RepublisherTest, ForcePublishCoversEverythingStagedBefore) {
  SetUpEngine();
  ivm::RepublisherOptions options;
  options.cadence_ms = 60'000;
  options.drain_threshold = 1000;  // neither trigger fires on its own
  ivm::Republisher rep(&engine_, options,
                       [this](const Snapshot&) { hook_calls_.fetch_add(1); });
  rep.Start();
  ASSERT_TRUE(engine_.EnqueueFact("r", {"tttt"}).ok());
  ASSERT_TRUE(rep.ForcePublish().ok());
  // Everything staged before the call is applied once it returns.
  EXPECT_EQ(engine_.ingest_queue()->depth(), 0u);
  EXPECT_EQ(rep.stats().ingested_facts, 1u);
  EXPECT_GE(rep.stats().publishes, 1u);
  rep.Stop();
}

TEST_F(RepublisherTest, StopRunsAFinalDrain) {
  SetUpEngine();
  ivm::RepublisherOptions options;
  options.cadence_ms = 60'000;
  options.drain_threshold = 1000;
  ivm::Republisher rep(&engine_, options, nullptr);
  rep.Start();
  ASSERT_TRUE(engine_.EnqueueFact("r", {"gg"}).ok());
  rep.Stop();  // must not strand the staged fact
  EXPECT_EQ(engine_.ingest_queue()->depth(), 0u);
  EXPECT_EQ(rep.stats().ingested_facts, 1u);
}

TEST_F(RepublisherTest, ForcePublishFailsWhenNotRunning) {
  SetUpEngine();
  ivm::Republisher rep(&engine_, {}, nullptr);
  EXPECT_EQ(rep.ForcePublish().code(), StatusCode::kFailedPrecondition);
  rep.Start();
  rep.Stop();
  EXPECT_EQ(rep.ForcePublish().code(), StatusCode::kFailedPrecondition);
}

/// Writers hammer EnqueueFact from many threads while the Republisher
/// drains — the tsan probe for the MPSC queue + single-mutator design.
TEST_F(RepublisherTest, ConcurrentWritersWhileDraining) {
  SetUpEngine();
  ivm::RepublisherOptions options;
  options.cadence_ms = 1;
  options.drain_threshold = 4;
  ivm::Republisher rep(&engine_, options,
                       [this](const Snapshot&) { hook_calls_.fetch_add(1); });
  rep.Start();

  constexpr size_t kWriters = 4;
  constexpr size_t kFactsPerWriter = 25;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([this, w, &failures] {
      for (size_t i = 0; i < kFactsPerWriter; ++i) {
        std::string value = "w";
        value += std::to_string(w);
        value += "f";
        value += std::to_string(i);
        if (!engine_.EnqueueFact("r", {value}).ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  ASSERT_TRUE(rep.ForcePublish().ok());
  rep.Stop();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(rep.stats().ingested_facts, kWriters * kFactsPerWriter);
  EXPECT_EQ(rep.stats().errors, 0u);
  // Spot-check one writer's fact made it into the model.
  Result<std::vector<RenderedRow>> rows = engine_.Query("suffix");
  ASSERT_TRUE(rows.ok());
  bool saw = false;
  for (const RenderedRow& row : rows.value()) {
    if (row.size() == 1 && row[0] == "w3f24") saw = true;
  }
  EXPECT_TRUE(saw);
}

}  // namespace
}  // namespace seqlog
