// Unit tests for acyclic transducer networks (Section 6.2): wiring,
// diameter, order, execution, and the Theorem 4 growth bound for chained
// order-2 machines (|out| = n^(2^d)).
#include <gtest/gtest.h>

#include "sequence/sequence_pool.h"
#include "transducer/library.h"
#include "transducer/network.h"

namespace seqlog {
namespace transducer {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  SeqId Seq(std::string_view text) {
    return pool_.FromChars(text, &symbols_);
  }
  std::string Render(SeqId id) { return pool_.Render(id, symbols_); }

  SymbolTable symbols_;
  SequencePool pool_;
};

TEST_F(NetworkTest, SerialPipeline) {
  // Example 7.1's shape: two machines in series.
  std::map<Symbol, Symbol> up;
  for (char c = 'a'; c <= 'z'; ++c) {
    up[symbols_.Intern(std::string_view(&c, 1))] =
        symbols_.Intern(std::string(1, static_cast<char>(c - 32)));
  }
  auto to_upper = MakeMap("upper", up, false);
  ASSERT_TRUE(to_upper.ok());
  auto copy = MakeIdentity("copy");
  ASSERT_TRUE(copy.ok());

  TransducerNetwork net("pipeline", 1);
  auto n0 = net.AddNode(copy.value(), {InputSource::FromNetwork(0)});
  ASSERT_TRUE(n0.ok());
  auto n1 = net.AddNode(to_upper.value(), {InputSource::FromNode(*n0)});
  ASSERT_TRUE(n1.ok());
  ASSERT_TRUE(net.SetOutput(*n1).ok());

  EXPECT_EQ(net.Diameter(), 2u);
  EXPECT_EQ(net.Order(), 1);
  auto out = net.Apply(std::vector<SeqId>{Seq("abc")}, &pool_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(Render(out.value()), "ABC");
}

TEST_F(NetworkTest, FanInNetwork) {
  auto append = MakeAppend("app", 2);
  ASSERT_TRUE(append.ok());
  TransducerNetwork net("fanin", 2);
  auto n0 = net.AddNode(append.value(), {InputSource::FromNetwork(0),
                                         InputSource::FromNetwork(1)});
  ASSERT_TRUE(n0.ok());
  ASSERT_TRUE(net.SetOutput(*n0).ok());
  auto out = net.Apply(std::vector<SeqId>{Seq("ab"), Seq("cd")}, &pool_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(Render(out.value()), "abcd");
}

TEST_F(NetworkTest, Theorem4SquareChainGrowth) {
  // d chained square machines give |out| = n^(2^d) — the order-2
  // polynomial bound of Theorem 4, attained.
  for (size_t d : {1u, 2u, 3u}) {
    TransducerNetwork net("chain", 1);
    InputSource src = InputSource::FromNetwork(0);
    for (size_t i = 0; i < d; ++i) {
      auto sq = MakeSquare("sq" + std::to_string(i));
      ASSERT_TRUE(sq.ok());
      auto node = net.AddNode(sq.value(), {src});
      ASSERT_TRUE(node.ok());
      src = InputSource::FromNode(*node);
    }
    ASSERT_TRUE(net.SetOutput(src.index).ok());
    EXPECT_EQ(net.Diameter(), d);
    EXPECT_EQ(net.Order(), 2);

    size_t n = 2;
    auto out = net.Apply(std::vector<SeqId>{Seq(std::string(n, 'a'))},
                         &pool_);
    ASSERT_TRUE(out.ok());
    size_t expected = n;
    for (size_t i = 0; i < d; ++i) expected *= expected;
    EXPECT_EQ(pool_.Length(out.value()), expected) << "d=" << d;
  }
}

TEST_F(NetworkTest, NetworkImplementsSequenceFunction) {
  auto copy = MakeIdentity("copy");
  ASSERT_TRUE(copy.ok());
  TransducerNetwork net("fn", 1);
  auto n0 = net.AddNode(copy.value(), {InputSource::FromNetwork(0)});
  ASSERT_TRUE(net.SetOutput(*n0).ok());
  const SequenceFunction& fn = net;
  EXPECT_EQ(fn.name(), "fn");
  EXPECT_EQ(fn.NumInputs(), 1u);
  EXPECT_EQ(fn.Order(), 1);
}

TEST_F(NetworkTest, WiringErrors) {
  auto append = MakeAppend("app", 2);
  ASSERT_TRUE(append.ok());
  TransducerNetwork net("bad", 1);
  // Wrong input count.
  EXPECT_FALSE(net.AddNode(append.value(), {InputSource::FromNetwork(0)})
                   .ok());
  // Network input out of range.
  EXPECT_FALSE(net.AddNode(append.value(), {InputSource::FromNetwork(0),
                                            InputSource::FromNetwork(7)})
                   .ok());
  // Forward (would-be-cyclic) node reference.
  EXPECT_FALSE(net.AddNode(append.value(), {InputSource::FromNetwork(0),
                                            InputSource::FromNode(3)})
                   .ok());
  // Running without an output node.
  auto copy = MakeIdentity("c");
  ASSERT_TRUE(copy.ok());
  auto n0 = net.AddNode(copy.value(), {InputSource::FromNetwork(0)});
  ASSERT_TRUE(n0.ok());
  auto out = net.Apply(std::vector<SeqId>{Seq("x")}, &pool_);
  EXPECT_EQ(out.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(net.SetOutput(42).ok());
}

TEST_F(NetworkTest, StatsAccumulateAcrossNodes) {
  auto c1 = MakeIdentity("c1");
  auto c2 = MakeIdentity("c2");
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  TransducerNetwork net("stats", 1);
  auto n0 = net.AddNode(c1.value(), {InputSource::FromNetwork(0)});
  auto n1 = net.AddNode(c2.value(), {InputSource::FromNode(*n0)});
  ASSERT_TRUE(net.SetOutput(*n1).ok());
  RunStats stats;
  auto out = net.Run(std::vector<SeqId>{Seq("abcd")}, &pool_, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(stats.total_steps, 8u);  // 4 per copy node
}

}  // namespace
}  // namespace transducer
}  // namespace seqlog
