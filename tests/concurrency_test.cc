// Concurrency: N threads executing one shared PreparedQuery against
// published snapshots while the main thread keeps adding facts and
// publishing new snapshots. Answers must match the single-threaded
// oracle exactly; run under ThreadSanitizer (the `tsan` CMake preset /
// CI job) to prove the pool/symbol-table/catalog locking and the
// copy-on-publish snapshot discipline are race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/programs.h"

namespace seqlog {
namespace {

using RowList = std::vector<RenderedRow>;

/// Deterministic pseudo-random DNA (no <random> needed).
std::string Dna(uint64_t seed, size_t len) {
  static const char kBases[] = {'a', 'c', 'g', 't'};
  std::string out;
  out.reserve(len);
  uint64_t x = seed * 6364136223846793005u + 1442695040888963407u;
  for (size_t i = 0; i < len; ++i) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdu;
    out.push_back(kBases[(x >> 24) % 4]);
  }
  return out;
}

TEST(Concurrency, SharedPreparedQueryAgainstOneSnapshotUnderWrites) {
  constexpr size_t kThreads = 8;
  constexpr size_t kExecutesPerThread = 25;
  constexpr size_t kWriterFacts = 40;

  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  std::vector<std::string> dna;
  for (size_t i = 0; i < 16; ++i) dna.push_back(Dna(i + 1, 24));
  for (const std::string& d : dna) ASSERT_TRUE(engine.AddFact("r", {d}).ok());
  const std::string probe = dna[3].substr(dna[3].size() - 6);

  Result<PreparedQuery> prepared = engine.Prepare("?- suffix($1).");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ASSERT_TRUE(prepared->Bind(1, probe).ok());

  // Freeze the oracle BEFORE the writer starts: the snapshot pins these
  // answers no matter what the writer does afterwards.
  Snapshot snapshot = engine.PublishSnapshot();
  const RowList expected = engine.Solve("?- suffix(" + probe + ").").answers;
  ASSERT_FALSE(expected.empty());

  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&prepared, &snapshot, &expected, &mismatches,
                          &failures] {
      for (size_t i = 0; i < kExecutesPerThread; ++i) {
        ResultSet rs = prepared->Execute(snapshot);
        if (!rs.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (rs.Materialize() != expected) mismatches.fetch_add(1);
      }
    });
  }

  // Writer: keep interning fresh sequences, mutating the live EDB and
  // publishing new snapshots while the readers hammer the old one.
  for (size_t i = 0; i < kWriterFacts; ++i) {
    ASSERT_TRUE(engine.AddFact("r", {Dna(1000 + i, 24)}).ok());
    Snapshot fresh = engine.PublishSnapshot();
    ASSERT_TRUE(fresh.valid());
    std::this_thread::yield();
  }

  for (std::thread& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(prepared->stats().executions, kThreads * kExecutesPerThread);
  // The prepared path never re-parsed or re-rewrote, from any thread.
  EXPECT_EQ(prepared->stats().goal_parses, 1u);
  EXPECT_EQ(prepared->stats().magic_rewrites, 1u);

  // A snapshot published after the writes sees the new facts.
  const std::string late_probe = Dna(1000, 24).substr(18);
  ASSERT_TRUE(prepared->Bind(1, late_probe).ok());
  EXPECT_TRUE(prepared->Execute(snapshot).empty()) << "old snapshot moved";
  EXPECT_FALSE(prepared->Execute(engine.PublishSnapshot()).empty());
}

TEST(Concurrency, ManySnapshotsManyGoalsInFlight) {
  // Readers run against *different* snapshot generations and two
  // different prepared goals at once; every reader still sees exactly
  // its snapshot's frozen answers.
  constexpr size_t kThreads = 6;
  constexpr size_t kRounds = 10;

  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgtacgt"}).ok());

  Result<PreparedQuery> hit = engine.Prepare("?- suffix(acgt).");
  ASSERT_TRUE(hit.ok());
  Result<PreparedQuery> edb_scan = engine.Prepare("?- r(X).");
  ASSERT_TRUE(edb_scan.ok());

  std::atomic<size_t> errors{0};
  std::vector<std::thread> readers;
  std::vector<Snapshot> generations;
  generations.push_back(engine.PublishSnapshot());
  std::vector<size_t> expected_facts{1};

  for (size_t round = 1; round < kRounds; ++round) {
    ASSERT_TRUE(engine.AddFact("r", {Dna(round, 12)}).ok());
    generations.push_back(engine.PublishSnapshot());
    expected_facts.push_back(1 + round);
  }

  for (size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (size_t round = 0; round < kRounds; ++round) {
        const Snapshot& snap = generations[(t + round) % generations.size()];
        ResultSet answers = hit->Execute(snap);
        if (!answers.ok() || answers.size() != 1) errors.fetch_add(1);
        ResultSet scan = edb_scan->Execute(snap);
        if (!scan.ok() ||
            scan.size() != expected_facts[(t + round) %
                                          generations.size()]) {
          errors.fetch_add(1);
        }
      }
    });
  }
  // Writer keeps going while readers drain the older generations.
  for (size_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine.AddFact("r", {Dna(5000 + i, 12)}).ok());
    (void)engine.PublishSnapshot();
    std::this_thread::yield();
  }
  for (std::thread& th : readers) th.join();
  EXPECT_EQ(errors.load(), 0u);
}

}  // namespace
}  // namespace seqlog
