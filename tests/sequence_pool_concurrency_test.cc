// SequencePool under contention: the lock-free id-indexed read path
// (View/Length/Render/size gate on an atomic size over chunked storage)
// must stay consistent while many writer threads intern overlapping
// span sets. docs/CONCURRENCY.md documents the contract these tests
// exercise; with parallel_eval_test.cc and concurrency_test.cc they are
// a TSan CI target — any data race fails the tsan job.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "sequence/sequence_pool.h"
#include "sequence/symbol_table.h"

namespace seqlog {
namespace {

// ---------------------------------------------------------------------
// Torture: N writers interning overlapping subsequence span sets while
// M readers resolve every published id through the lock-free path.
// ---------------------------------------------------------------------

TEST(SequencePoolTorture, ConcurrentWritersAndLockFreeReaders) {
  constexpr size_t kWriters = 4;
  constexpr size_t kReaders = 3;
  constexpr size_t kBaseLen = 48;

  SymbolTable symbols;
  SequencePool pool;
  // One shared base string; every writer interns all of its contiguous
  // subsequences (heavily overlapping work → constant duplicate hits on
  // the shared-lock fast path) plus a private tail that forces fresh
  // interning (exclusive-lock slow path) throughout the run.
  std::vector<Symbol> base;
  for (size_t i = 0; i < kBaseLen; ++i) {
    base.push_back(symbols.Intern(std::string(1, 'a' + (i * 7) % 4)));
  }

  std::atomic<bool> stop{false};
  std::atomic<size_t> checked{0};
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Symbol tag = symbols.Intern(std::string(1, 'w'));
      Symbol digit = symbols.Intern(std::string(1, '0' + char(w)));
      std::vector<Symbol> priv;
      priv.reserve(kBaseLen + 2);
      for (size_t len = 1; len <= kBaseLen; ++len) {
        for (size_t from = 0; from + len <= kBaseLen; ++from) {
          SeqId id = pool.Intern(SeqView(base).subspan(from, len));
          ASSERT_NE(id, SequencePool::kInvalidSeq);
          // Writer-private spans start with the writer's tag, so every
          // iteration also interns a sequence no other thread creates —
          // constant pressure on the exclusive-lock slow path.
          priv.assign({tag, digit});
          priv.insert(priv.end(), base.begin() + from,
                      base.begin() + from + len);
          pool.Intern(priv);
        }
      }
    });
  }
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        size_t published = pool.size();
        ASSERT_GE(published, 1u);
        // Every id below the gate must resolve to a fully published
        // entry whose content round-trips through Find.
        for (SeqId id = 0; id < published; id += 7) {
          SeqView v = pool.View(id);
          ASSERT_LE(v.size(), kBaseLen + 2);
          EXPECT_EQ(pool.Length(id), v.size());
          EXPECT_EQ(pool.Find(v), id);
          ++checked;
        }
      }
    });
  }
  for (size_t i = 0; i < kWriters; ++i) threads[i].join();
  stop.store(true, std::memory_order_relaxed);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  EXPECT_GT(checked.load(), 0u);
  // Post-join determinism: equal spans share one id, and every
  // subsequence of the base is present exactly once.
  for (size_t len = 1; len <= kBaseLen; ++len) {
    for (size_t from = 0; from + len <= kBaseLen; ++from) {
      SeqView span = SeqView(base).subspan(from, len);
      SeqId id = pool.Find(span);
      ASSERT_NE(id, SequencePool::kInvalidSeq);
      SeqView stored = pool.View(id);
      EXPECT_TRUE(std::equal(span.begin(), span.end(), stored.begin(),
                             stored.end()));
    }
  }
}

// ---------------------------------------------------------------------
// Chunk-boundary growth: ids spanning many storage chunks stay valid
// and lock-free readable (the directory publishes through the gate).
// ---------------------------------------------------------------------

TEST(SequencePoolTorture, ViewsSurviveGrowthAcrossChunks) {
  SymbolTable symbols;
  SequencePool pool;
  Symbol a = symbols.Intern("a");
  Symbol b = symbols.Intern("b");
  // > 2 chunks (chunk size is 1024): 3000 distinct two-symbol-alphabet
  // sequences of increasing length-pattern.
  std::vector<SeqView> views;
  std::vector<std::vector<Symbol>> inputs;
  inputs.reserve(3000);
  for (size_t i = 0; i < 3000; ++i) {
    std::vector<Symbol> s;
    for (size_t bit = 0; bit < 12; ++bit) {
      s.push_back((i >> bit) & 1 ? a : b);
    }
    inputs.push_back(std::move(s));
  }
  std::vector<SeqId> ids;
  for (const auto& s : inputs) {
    SeqId id = pool.Intern(s);
    ids.push_back(id);
    views.push_back(pool.View(id));
  }
  // Views captured before later growth still point at live storage.
  for (size_t i = 0; i < ids.size(); ++i) {
    SeqView now = pool.View(ids[i]);
    EXPECT_EQ(views[i].data(), now.data()) << "entry moved: " << i;
    EXPECT_TRUE(std::equal(now.begin(), now.end(), inputs[i].begin(),
                           inputs[i].end()));
  }
}

}  // namespace
}  // namespace seqlog
