// Tests for the model-theoretic semantics (Appendix A): Definition 12
// models, Lemma 4 (model iff T(I) subset of I), Corollary 5 (lfp is the
// unique minimal model) and Corollary 6 (entailment = fixpoint
// membership). These cross-check the fixpoint engine against the
// declarative semantics on the paper's example programs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "model/model_theory.h"
#include "parser/parser.h"

namespace seqlog {
namespace {

/// Test harness: one engine (symbols/pool/catalog) plus a checker bound
/// to it. Programs are parsed through the engine so predicate ids align.
class ModelTheoryTest : public ::testing::Test {
 protected:
  void Load(std::string_view program_text) {
    ASSERT_TRUE(engine_.LoadProgram(program_text).ok());
    checker_ = std::make_unique<model::ModelChecker>(
        engine_.catalog(), engine_.pool(), engine_.registry());
    ASSERT_TRUE(checker_->SetProgram(engine_.program()).ok());
  }

  void AddFact(std::string_view pred, const std::vector<std::string>& args) {
    ASSERT_TRUE(engine_.AddFact(pred, args).ok());
  }

  /// Evaluates the loaded program over the engine's facts and returns the
  /// computed least fixpoint as a fresh database.
  std::unique_ptr<Database> Lfp() {
    eval::EvalOutcome outcome = engine_.Evaluate();
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    auto copy = std::make_unique<Database>(engine_.catalog());
    copy->UnionWith(*engine_.model());
    return copy;
  }

  bool IsModel(const Database& interp) {
    auto result = checker_->IsModel(engine_.edb(), interp);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() && result->is_model;
  }

  Engine engine_;
  std::unique_ptr<model::ModelChecker> checker_;
};

TEST_F(ModelTheoryTest, LfpIsAModel) {
  Load("suffix(X[N:end]) :- r(X).");
  AddFact("r", {"abc"});
  std::unique_ptr<Database> lfp = Lfp();
  EXPECT_TRUE(IsModel(*lfp));
}

TEST_F(ModelTheoryTest, EmptyInterpretationIsNotAModelOfFacts) {
  Load("p(X) :- r(X).");
  AddFact("r", {"ab"});
  Database empty(engine_.catalog());
  // db atoms are clauses with empty bodies; the empty interpretation
  // violates them.
  EXPECT_FALSE(IsModel(empty));
}

TEST_F(ModelTheoryTest, ViolationWitnessIsReported) {
  Load("p(X) :- r(X).");
  AddFact("r", {"ab"});
  Database empty(engine_.catalog());
  auto result = checker_->IsModel(engine_.edb(), empty);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->violation.has_value());
  EXPECT_EQ(result->violation->tuple.size(), 1u);
}

TEST_F(ModelTheoryTest, LfpMinusAnyDerivedAtomIsNotAModel) {
  // Corollary 5: lfp is the *minimal* model, so removing any single
  // derived atom must break the model property.
  Load("suffix(X[N:end]) :- r(X).\n"
       "short(X) :- suffix(X), Y = X[1:1].");
  AddFact("r", {"abc"});
  std::unique_ptr<Database> lfp = Lfp();
  ASSERT_TRUE(IsModel(*lfp));

  // Rebuild lfp without one atom at a time (skipping the database atom).
  PredId r_pred = engine_.catalog()->Find("r").value();
  std::vector<std::pair<PredId, std::vector<SeqId>>> atoms;
  for (PredId pred : lfp->PredicatesWithRelations()) {
    const Relation* rel = lfp->Get(pred);
    for (uint32_t i = 0; i < rel->size(); ++i) {
      TupleView row = rel->RowAt(i);
      atoms.emplace_back(pred, std::vector<SeqId>(row.begin(), row.end()));
    }
  }
  ASSERT_GT(atoms.size(), 1u);
  for (size_t skip = 0; skip < atoms.size(); ++skip) {
    if (atoms[skip].first == r_pred) continue;
    Database smaller(engine_.catalog());
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (i == skip) continue;
      smaller.Insert(atoms[i].first,
                     TupleView(atoms[i].second.data(),
                               atoms[i].second.size()));
    }
    EXPECT_FALSE(IsModel(smaller))
        << "dropping atom " << skip << " should break the model property";
  }
}

TEST_F(ModelTheoryTest, SupersetsClosedUnderTAreModels) {
  // Any fixpoint-closed superset of lfp is a model (Lemma 4); here we add
  // an unrelated fact for a head predicate and re-close.
  Load("p(X[1:1]) :- r(X).");
  AddFact("r", {"ab"});
  std::unique_ptr<Database> lfp = Lfp();
  ASSERT_TRUE(IsModel(*lfp));

  // Add p("zz"): p has no body occurrence, so the superset is still
  // closed under T... but only if the *domain growth* from "zz" does not
  // enable new r-derivations. r is extensional, so it cannot.
  Database larger(engine_.catalog());
  larger.UnionWith(*lfp);
  PredId p_pred = engine_.catalog()->Find("p").value();
  SeqId zz = engine_.pool()->FromChars("zz", engine_.symbols());
  std::vector<SeqId> tuple = {zz};
  larger.Insert(p_pred, TupleView(tuple.data(), tuple.size()));
  EXPECT_TRUE(IsModel(larger));
}

TEST_F(ModelTheoryTest, SupersetEnablingNewDerivationsIsNotAModel) {
  // Enlarging an interpretation can *break* the model property when the
  // new atom feeds a rule body: p(ab) requires q(ab) via the second rule.
  Load("q(X) :- p(X).");
  AddFact("r", {"ab"});
  std::unique_ptr<Database> lfp = Lfp();
  ASSERT_TRUE(IsModel(*lfp));

  Database larger(engine_.catalog());
  larger.UnionWith(*lfp);
  PredId p_pred = engine_.catalog()->Find("p").value();
  SeqId ab = engine_.pool()->FromChars("ab", engine_.symbols());
  std::vector<SeqId> tuple = {ab};
  larger.Insert(p_pred, TupleView(tuple.data(), tuple.size()));
  EXPECT_FALSE(IsModel(larger));  // q(ab) is missing
}

TEST_F(ModelTheoryTest, ApplyTOnceMatchesDefinition4) {
  Load("p(X[1:1]) :- r(X).");
  AddFact("r", {"ab"});
  // T(empty) = db atoms only: rule bodies are unsatisfied.
  Database empty(engine_.catalog());
  auto t0 = checker_->ApplyTOnce(engine_.edb(), empty);
  ASSERT_TRUE(t0.ok());
  EXPECT_EQ((*t0)->TotalFacts(), 1u);
  // T(T(empty)) adds p(a).
  auto t1 = checker_->ApplyTOnce(engine_.edb(), **t0);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ((*t1)->TotalFacts(), 2u);
}

TEST_F(ModelTheoryTest, TOperatorIsMonotonic) {
  // Lemma 2 on concrete interpretations: I1 subset I2 implies
  // T(I1) subset T(I2).
  Load("p(X[1:N]) :- r(X).\nq(X ++ X) :- p(X).");
  AddFact("r", {"abc"});
  Database i1(engine_.catalog());
  auto t_i1 = checker_->ApplyTOnce(engine_.edb(), i1);
  ASSERT_TRUE(t_i1.ok());
  auto t_i2 = checker_->ApplyTOnce(engine_.edb(), **t_i1);
  ASSERT_TRUE(t_i2.ok());
  // Every atom of T(I1) is in T(I2) (I1 = empty subset T(I1)).
  for (PredId pred : (*t_i1)->PredicatesWithRelations()) {
    const Relation* rel = (*t_i1)->Get(pred);
    for (uint32_t i = 0; i < rel->size(); ++i) {
      EXPECT_TRUE((*t_i2)->Contains(pred, rel->RowAt(i)));
    }
  }
}

TEST_F(ModelTheoryTest, IteratingTReachesTheLfp) {
  // T ^ omega: iterate T from the empty interpretation until a fixpoint
  // and compare against the engine's answer (Corollary 5).
  Load("suffix(X[N:end]) :- r(X).\nkeep(X) :- suffix(X), X != b.");
  AddFact("r", {"ab"});
  std::unique_ptr<Database> lfp = Lfp();

  auto current = std::make_unique<Database>(engine_.catalog());
  for (int round = 0; round < 64; ++round) {
    auto next = checker_->ApplyTOnce(engine_.edb(), *current);
    ASSERT_TRUE(next.ok());
    // Definition 4's T is not inflationary; accumulate T(I) union I to
    // build the chain T ^ i (the chain is increasing by monotonicity).
    (*next)->UnionWith(*current);
    if ((*next)->TotalFacts() == current->TotalFacts()) break;
    current = std::move(next.value());
  }
  EXPECT_EQ(current->TotalFacts(), lfp->TotalFacts());
  for (PredId pred : lfp->PredicatesWithRelations()) {
    const Relation* rel = lfp->Get(pred);
    for (uint32_t i = 0; i < rel->size(); ++i) {
      EXPECT_TRUE(current->Contains(pred, rel->RowAt(i)));
    }
  }
}

TEST_F(ModelTheoryTest, EntailsMatchesFixpointMembership) {
  Load("suffix(X[N:end]) :- r(X).");
  AddFact("r", {"abc"});
  PredId suffix_pred = engine_.catalog()->Find("suffix").value();
  SeqId bc = engine_.pool()->FromChars("bc", engine_.symbols());
  SeqId zz = engine_.pool()->FromChars("zz", engine_.symbols());
  auto yes = checker_->Entails(engine_.edb(), suffix_pred, {bc});
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(yes.value());
  auto no = checker_->Entails(engine_.edb(), suffix_pred, {zz});
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(no.value());
}

TEST_F(ModelTheoryTest, EntailsPropagatesBudgetExhaustion) {
  // Entailment over a divergent program (Example 1.5's rep2) cannot
  // terminate; the budget turns that into kResourceExhausted.
  Load("rep2(X, X) :- r(X).\nrep2(X ++ Y, Y) :- rep2(X, Y).");
  AddFact("r", {"ab"});
  PredId rep2 = engine_.catalog()->Find("rep2").value();
  SeqId ab = engine_.pool()->FromChars("ab", engine_.symbols());
  eval::EvalLimits limits;
  limits.max_iterations = 50;
  auto result = checker_->Entails(engine_.edb(), rep2, {ab, ab}, limits);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace seqlog
