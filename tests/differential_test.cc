// Randomized differential testing of the evaluator (PR 9 satellite):
// a seed-reproducible generator emits bounded strongly-safe programs
// over a small EDB alphabet, an independent reference evaluator (naive
// fixpoint over plain string sets, no sharing with src/) computes the
// expected model, and every generated program is checked bit-identical
// across thread widths 1/2/8 — with the parallel fan-out and the
// shard-parallel merge barrier forced on via
// EvalOptions::min_parallel_work = 1 — plus the naive and stratified
// strategy oracles.
//
// Flags (also usable for CI soak runs, .github/workflows/soak.yml):
//   --seed=N    base seed of the corpus (default: fixed corpus)
//   --iters=N   number of generated programs (default 200)
// Environment:
//   SEQLOG_DIFF_SEED / SEQLOG_DIFF_ITERS  same as the flags
//   SEQLOG_DIFF_SEED_LOG  file to append failing seeds to (CI uploads
//                         it as an artifact)
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/engine.h"

namespace seqlog {
namespace {

uint64_t g_base_seed = 20250807;
size_t g_iters = 200;

// ---------------------------------------------------------------------
// Program IR. Generated rules are range-restricted by construction
// (every head variable occurs in a positive body literal) and
// constructive heads only ever sit on EDB-only bodies with the head
// predicate used nowhere else, so every program is strongly safe and
// its model finite.
// ---------------------------------------------------------------------

struct Pred {
  std::string name;
  int arity;
};

struct Lit {
  int pred;
  std::vector<int> vars;  // indices into kVarNames
};

struct Rule {
  int head_pred;
  std::vector<int> head_vars;
  bool head_concat = false;  // head is name(v0 ++ v1)
  std::vector<Lit> body;
};

struct GenProgram {
  std::vector<Pred> preds;  // [0] = e1/1, [1] = e2/2, rest IDB
  std::vector<Rule> rules;
  std::vector<std::string> e1_facts;
  std::vector<std::pair<std::string, std::string>> e2_facts;
};

constexpr const char* kVarNames[] = {"X", "Y", "Z", "W"};

std::string RandomSeq(std::mt19937_64* rng) {
  std::uniform_int_distribution<int> len_dist(1, 4);
  std::uniform_int_distribution<int> sym_dist(0, 1);
  int len = len_dist(*rng);
  std::string s;
  for (int i = 0; i < len; ++i) s.push_back(sym_dist(*rng) ? 'b' : 'a');
  return s;
}

GenProgram Generate(uint64_t seed) {
  std::mt19937_64 rng(seed);
  GenProgram prog;
  prog.preds.push_back({"e1", 1});
  prog.preds.push_back({"e2", 2});
  std::uniform_int_distribution<int> e1_count(3, 8);
  std::uniform_int_distribution<int> e2_count(4, 12);
  int n1 = e1_count(rng);
  for (int i = 0; i < n1; ++i) prog.e1_facts.push_back(RandomSeq(&rng));
  int n2 = e2_count(rng);
  for (int i = 0; i < n2; ++i) {
    prog.e2_facts.emplace_back(RandomSeq(&rng), RandomSeq(&rng));
  }

  auto new_pred = [&prog](int arity) {
    std::string name = "p";
    name += std::to_string(prog.preds.size() - 2);
    prog.preds.push_back({std::move(name), arity});
    return static_cast<int>(prog.preds.size()) - 1;
  };
  std::vector<int> binary_idb;  // non-sink binary IDB preds, for reuse

  std::uniform_int_distribution<int> rule_count(2, 6);
  std::uniform_int_distribution<int> template_dist(0, 7);
  int n_rules = rule_count(rng);
  for (int r = 0; r < n_rules; ++r) {
    switch (template_dist(rng)) {
      case 0: {  // projection: p(X) :- e2(X, Y).  (either column)
        int p = new_pred(1);
        bool first = rng() & 1;
        prog.rules.push_back(
            Rule{p, {first ? 0 : 1}, false, {Lit{1, {0, 1}}}});
        break;
      }
      case 1: {  // join: p(X, Z) :- e2(X, Y), e2(Y, Z).
        int p = new_pred(2);
        prog.rules.push_back(
            Rule{p, {0, 2}, false, {Lit{1, {0, 1}}, Lit{1, {1, 2}}}});
        binary_idb.push_back(p);
        break;
      }
      case 2: {  // transitive closure of e2
        int p = new_pred(2);
        prog.rules.push_back(Rule{p, {0, 1}, false, {Lit{1, {0, 1}}}});
        prog.rules.push_back(
            Rule{p, {0, 2}, false, {Lit{p, {0, 1}}, Lit{1, {1, 2}}}});
        binary_idb.push_back(p);
        break;
      }
      case 3: {  // filter: p(X) :- e1(X), e2(X, Y).
        int p = new_pred(1);
        prog.rules.push_back(
            Rule{p, {0}, false, {Lit{0, {0}}, Lit{1, {0, 1}}}});
        break;
      }
      case 4: {  // constructive sink: c(X ++ Y) :- e1(X), e1(Y).
        int p = new_pred(1);
        prog.rules.push_back(
            Rule{p, {0, 1}, true, {Lit{0, {0}}, Lit{0, {1}}}});
        break;
      }
      case 5: {  // constructive sink from pairs: c(X ++ Y) :- e2(X, Y).
        int p = new_pred(1);
        prog.rules.push_back(Rule{p, {0, 1}, true, {Lit{1, {0, 1}}}});
        break;
      }
      case 6: {  // self-join column equality: p(X) :- e2(X, X).
        int p = new_pred(1);
        prog.rules.push_back(Rule{p, {0}, false, {Lit{1, {0, 0}}}});
        break;
      }
      default: {  // IDB chaining: p(Y) :- q(X, Y). over a prior binary
        if (binary_idb.empty()) {
          int p = new_pred(1);
          prog.rules.push_back(Rule{p, {0}, false, {Lit{0, {0}}}});
          break;
        }
        int q = binary_idb[rng() % binary_idb.size()];
        int p = new_pred(1);
        prog.rules.push_back(Rule{p, {1}, false, {Lit{q, {0, 1}}}});
        break;
      }
    }
  }
  return prog;
}

std::string RenderProgram(const GenProgram& prog) {
  std::string out;
  for (const Rule& rule : prog.rules) {
    out += prog.preds[rule.head_pred].name;
    out += '(';
    if (rule.head_concat) {
      out += kVarNames[rule.head_vars[0]];
      out += " ++ ";
      out += kVarNames[rule.head_vars[1]];
    } else {
      for (size_t i = 0; i < rule.head_vars.size(); ++i) {
        if (i) out += ", ";
        out += kVarNames[rule.head_vars[i]];
      }
    }
    out += ") :- ";
    for (size_t li = 0; li < rule.body.size(); ++li) {
      if (li) out += ", ";
      out += prog.preds[rule.body[li].pred].name;
      out += '(';
      for (size_t i = 0; i < rule.body[li].vars.size(); ++i) {
        if (i) out += ", ";
        out += kVarNames[rule.body[li].vars[i]];
      }
      out += ')';
    }
    out += ".\n";
  }
  return out;
}

// ---------------------------------------------------------------------
// Reference evaluator: naive fixpoint over sets of string tuples. No
// SeqIds, no relations, no sharing with src/ — the pre-shard (indeed
// pre-everything) model the engine must reproduce.
// ---------------------------------------------------------------------

using RefModel = std::map<int, std::set<std::vector<std::string>>>;

void RefMatch(const Rule& rule, size_t li, const RefModel& model,
              std::vector<std::optional<std::string>>* env,
              std::set<std::vector<std::string>>* out) {
  if (li == rule.body.size()) {
    std::vector<std::string> head;
    if (rule.head_concat) {
      head.push_back(*(*env)[rule.head_vars[0]] +
                     *(*env)[rule.head_vars[1]]);
    } else {
      for (int v : rule.head_vars) head.push_back(*(*env)[v]);
    }
    out->insert(std::move(head));
    return;
  }
  const Lit& lit = rule.body[li];
  auto it = model.find(lit.pred);
  if (it == model.end()) return;
  for (const std::vector<std::string>& row : it->second) {
    std::vector<int> bound_here;
    bool ok = true;
    for (size_t i = 0; i < lit.vars.size() && ok; ++i) {
      int v = lit.vars[i];
      if ((*env)[v].has_value()) {
        ok = *(*env)[v] == row[i];
      } else {
        (*env)[v] = row[i];
        bound_here.push_back(v);
      }
    }
    if (ok) RefMatch(rule, li + 1, model, env, out);
    for (int v : bound_here) (*env)[v].reset();
  }
}

RefModel RefEvaluate(const GenProgram& prog) {
  RefModel model;
  for (const std::string& s : prog.e1_facts) model[0].insert({s});
  for (const auto& [a, b] : prog.e2_facts) model[1].insert({a, b});
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : prog.rules) {
      std::set<std::vector<std::string>> derived;
      std::vector<std::optional<std::string>> env(4);
      RefMatch(rule, 0, model, &env, &derived);
      for (const std::vector<std::string>& row : derived) {
        if (model[rule.head_pred].insert(row).second) changed = true;
      }
    }
  }
  return model;
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

void LogFailingSeed(uint64_t seed) {
  const char* path = std::getenv("SEQLOG_DIFF_SEED_LOG");
  if (path == nullptr || *path == '\0') return;
  if (FILE* f = std::fopen(path, "a")) {
    std::fprintf(f, "%llu\n", static_cast<unsigned long long>(seed));
    std::fclose(f);
  }
}

/// Evaluates `prog` in a fresh Engine and returns the sorted rendered
/// rows per predicate index, or nullopt (with a test failure) on error.
std::optional<std::vector<std::vector<RenderedRow>>> RunEngine(
    const GenProgram& prog, const eval::EvalOptions& options,
    eval::EvalStats* stats) {
  Engine engine;
  Status s = engine.LoadProgram(RenderProgram(prog));
  EXPECT_TRUE(s.ok()) << s.ToString() << "\n" << RenderProgram(prog);
  if (!s.ok()) return std::nullopt;
  for (const std::string& f : prog.e1_facts) {
    EXPECT_TRUE(engine.AddFact("e1", {f}).ok());
  }
  for (const auto& [a, b] : prog.e2_facts) {
    EXPECT_TRUE(engine.AddFact("e2", {a, b}).ok());
  }
  eval::EvalOutcome outcome = engine.Evaluate(options);
  EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  if (!outcome.status.ok()) return std::nullopt;
  if (stats != nullptr) *stats = outcome.stats;
  std::vector<std::vector<RenderedRow>> per_pred;
  for (const Pred& pred : prog.preds) {
    Result<std::vector<RenderedRow>> rows = engine.Query(pred.name);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    if (!rows.ok()) return std::nullopt;
    per_pred.push_back(std::move(rows).value());
  }
  return per_pred;
}

std::vector<std::vector<RenderedRow>> RefRows(const GenProgram& prog,
                                              const RefModel& model) {
  std::vector<std::vector<RenderedRow>> per_pred;
  for (size_t p = 0; p < prog.preds.size(); ++p) {
    std::vector<RenderedRow> rows;
    auto it = model.find(static_cast<int>(p));
    if (it != model.end()) {
      rows.assign(it->second.begin(), it->second.end());
    }
    // std::set<vector<string>> iterates in the same lexicographic order
    // Engine::Query sorts into.
    per_pred.push_back(std::move(rows));
  }
  return per_pred;
}

/// One generated program checked across widths and strategies; returns
/// false (after logging the seed) on any mismatch.
bool CheckSeed(uint64_t seed, bool strategy_oracles) {
  const GenProgram prog = Generate(seed);
  const RefModel ref_model = RefEvaluate(prog);
  const std::vector<std::vector<RenderedRow>> expected =
      RefRows(prog, ref_model);

  bool ok = true;
  eval::EvalStats serial_stats;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    eval::EvalOptions options;
    options.num_threads = threads;
    // Force even these tiny rounds through the parallel fan-out and the
    // shard-parallel merge barrier; the production floor would keep
    // them serial and test nothing new.
    options.min_parallel_work = 1;
    eval::EvalStats stats;
    auto got = RunEngine(prog, options, &stats);
    if (!got.has_value()) return false;
    if (*got != expected) {
      ADD_FAILURE() << "model mismatch vs reference at threads="
                    << threads << " seed=" << seed << "\n"
                    << RenderProgram(prog);
      ok = false;
    }
    if (threads == 1) {
      serial_stats = stats;
    } else {
      // The counters the parallel contract pins across widths.
      EXPECT_EQ(stats.facts, serial_stats.facts) << "seed=" << seed;
      EXPECT_EQ(stats.iterations, serial_stats.iterations)
          << "seed=" << seed;
      EXPECT_EQ(stats.derivations, serial_stats.derivations)
          << "seed=" << seed;
      EXPECT_EQ(stats.domain_sequences, serial_stats.domain_sequences)
          << "seed=" << seed;
      ok = ok && stats.facts == serial_stats.facts &&
           stats.iterations == serial_stats.iterations &&
           stats.derivations == serial_stats.derivations &&
           stats.domain_sequences == serial_stats.domain_sequences;
    }
  }
  if (strategy_oracles) {
    for (auto strategy :
         {eval::Strategy::kNaive, eval::Strategy::kStratified}) {
      eval::EvalOptions options;
      options.strategy = strategy;
      options.num_threads = strategy == eval::Strategy::kNaive ? 1 : 8;
      options.min_parallel_work = 1;
      auto got = RunEngine(prog, options, nullptr);
      if (!got.has_value()) return false;
      if (*got != expected) {
        ADD_FAILURE() << "model mismatch vs reference for strategy "
                      << (strategy == eval::Strategy::kNaive
                              ? "naive"
                              : "stratified")
                      << " seed=" << seed << "\n" << RenderProgram(prog);
        ok = false;
      }
    }
  }
  if (!ok) LogFailingSeed(seed);
  return ok;
}

TEST(DifferentialTest, GeneratedProgramsMatchReferenceAtAllWidths) {
  size_t failures = 0;
  for (size_t i = 0; i < g_iters; ++i) {
    if (!CheckSeed(g_base_seed + i, /*strategy_oracles=*/false)) {
      ++failures;
      if (failures >= 5) {
        GTEST_FAIL() << "stopping after 5 failing seeds";
        return;
      }
    }
  }
}

TEST(DifferentialTest, StrategyOraclesAgreeOnCorpusPrefix) {
  // Naive and stratified re-evaluate everything each round — cap the
  // corpus prefix so this stays cheap; the width sweep above covers the
  // full corpus.
  const size_t n = std::min<size_t>(g_iters, 50);
  for (size_t i = 0; i < n; ++i) {
    if (!CheckSeed(g_base_seed + i, /*strategy_oracles=*/true)) {
      GTEST_FAIL() << "stopping at first failing oracle seed";
      return;
    }
  }
}

}  // namespace
}  // namespace seqlog

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (const char* env = std::getenv("SEQLOG_DIFF_SEED")) {
    seqlog::g_base_seed = std::strtoull(env, nullptr, 10);
  }
  if (const char* env = std::getenv("SEQLOG_DIFF_ITERS")) {
    seqlog::g_iters = std::strtoull(env, nullptr, 10);
  }
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      seqlog::g_base_seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (arg.rfind("--iters=", 0) == 0) {
      seqlog::g_iters = std::strtoull(argv[i] + 8, nullptr, 10);
    }
  }
  return RUN_ALL_TESTS();
}
