// Unit tests for the Turing machine substrate: runner, sample machines,
// configuration encode/step/decode.
#include <gtest/gtest.h>

#include "tm/machines.h"
#include "tm/turing.h"

namespace seqlog {
namespace tm {
namespace {

class TmTest : public ::testing::Test {
 protected:
  std::vector<Symbol> Chars(std::string_view text) {
    std::vector<Symbol> out;
    for (char c : text) {
      out.push_back(symbols_.Intern(std::string_view(&c, 1)));
    }
    return out;
  }
  std::string Render(std::span<const Symbol> syms) {
    std::string out;
    for (Symbol s : syms) {
      std::string_view name = symbols_.Name(s);
      if (name.size() == 1) {
        out += name;
      } else {
        out += '<';
        out += name;
        out += '>';
      }
    }
    return out;
  }
  SymbolTable symbols_;
};

TEST_F(TmTest, MachinesValidate) {
  EXPECT_TRUE(MakeUnaryDouble(&symbols_).Validate().ok());
  EXPECT_TRUE(MakeBinaryIncrement(&symbols_).Validate().ok());
  EXPECT_TRUE(MakeBitFlip(&symbols_).Validate().ok());
}

TEST_F(TmTest, BitFlipFlips) {
  TuringMachine m = MakeBitFlip(&symbols_);
  auto r = RunMachine(m, Chars("0110"), 1000);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Render(ExtractOutput(m, r.value())), "1001");
  EXPECT_EQ(r->steps, 6u);  // marker + 4 bits + halt-on-blank
}

TEST_F(TmTest, UnaryDoubleDoubles) {
  TuringMachine m = MakeUnaryDouble(&symbols_);
  for (size_t n : {0u, 1u, 2u, 3u, 5u, 8u}) {
    auto r = RunMachine(m, Chars(std::string(n, '1')), 100000);
    ASSERT_TRUE(r.ok()) << "n=" << n << ": " << r.status().ToString();
    EXPECT_EQ(Render(ExtractOutput(m, r.value())), std::string(2 * n, '1'))
        << "n=" << n;
  }
}

TEST_F(TmTest, UnaryDoubleIsSuperlinear) {
  TuringMachine m = MakeUnaryDouble(&symbols_);
  auto r4 = RunMachine(m, Chars("1111"), 100000);
  auto r8 = RunMachine(m, Chars("11111111"), 100000);
  ASSERT_TRUE(r4.ok());
  ASSERT_TRUE(r8.ok());
  // Quadratic: doubling n should far more than double the steps.
  EXPECT_GT(r8->steps, 3 * r4->steps);
}

TEST_F(TmTest, BinaryIncrement) {
  TuringMachine m = MakeBinaryIncrement(&symbols_);
  struct Case {
    const char* in;
    const char* out;
  } cases[] = {{"0", "1"},       {"01", "10"},   {"0111", "1000"},
               {"0000", "0001"}, {"010", "011"}, {"0101", "0110"}};
  for (const Case& c : cases) {
    auto r = RunMachine(m, Chars(c.in), 1000);
    ASSERT_TRUE(r.ok()) << c.in;
    EXPECT_EQ(Render(ExtractOutput(m, r.value())), c.out) << c.in;
  }
}

TEST_F(TmTest, StepBudgetIsEnforced) {
  TuringMachine m = MakeUnaryDouble(&symbols_);
  auto r = RunMachine(m, Chars("11111111"), 10);
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(TmTest, InitialConfigEncoding) {
  TuringMachine m = MakeBitFlip(&symbols_);
  auto config = InitialConfig(m, Chars("01"));
  EXPECT_EQ(Render(config), "<q0><|->01");
}

TEST_F(TmTest, StepConfigMatchesRunner) {
  // Follow the runner step by step via StepConfig and compare final
  // configurations.
  TuringMachine m = MakeUnaryDouble(&symbols_);
  std::vector<Symbol> input = Chars("111");
  auto direct = RunMachine(m, input, 100000);
  ASSERT_TRUE(direct.ok());

  std::vector<Symbol> config = InitialConfig(m, input);
  for (size_t i = 0; i < direct->steps; ++i) {
    config = StepConfig(m, config);
  }
  // One more step: halted configurations are fixed points.
  std::vector<Symbol> again = StepConfig(m, config);
  EXPECT_EQ(config, again);

  std::vector<Symbol> expected =
      EncodeConfig(m, direct->tape, direct->head, direct->final_state);
  EXPECT_EQ(Render(config), Render(expected));
}

TEST_F(TmTest, DecodeConfigStripsMachinery) {
  TuringMachine m = MakeBitFlip(&symbols_);
  auto direct = RunMachine(m, Chars("10"), 1000);
  ASSERT_TRUE(direct.ok());
  auto config =
      EncodeConfig(m, direct->tape, direct->head, direct->final_state);
  EXPECT_EQ(Render(DecodeConfig(m, config)), "01");
}

TEST_F(TmTest, ValidationCatchesBadMachines) {
  TuringMachine m = MakeBitFlip(&symbols_);
  // Overwriting the marker is illegal.
  m.delta[{m.initial_state, m.left_marker}] = {
      m.initial_state, symbols_.Intern("0"), TmMove::kRight};
  EXPECT_FALSE(m.Validate().ok());

  TuringMachine m2 = MakeBitFlip(&symbols_);
  // Transitions out of halting states are illegal.
  m2.delta[{*m2.halting_states.begin(), m2.blank}] = {
      m2.initial_state, m2.blank, TmMove::kStay};
  EXPECT_FALSE(m2.Validate().ok());

  TuringMachine m3 = MakeBitFlip(&symbols_);
  // States and tape symbols must be disjoint.
  m3.tape_alphabet.insert(m3.initial_state);
  EXPECT_FALSE(m3.Validate().ok());
}

TEST_F(TmTest, MissingTransitionIsFailedPrecondition) {
  TuringMachine m = MakeBitFlip(&symbols_);
  m.delta.erase({symbols_.Intern("qrun"), symbols_.Intern("1")});
  auto r = RunMachine(m, Chars("01"), 1000);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace tm
}  // namespace seqlog
