// Goal-directed query subsystem: adornments, magic rewrite, Solver.
//
// The load-bearing property: on every paper-example program with a
// ground(able) goal, Solve returns exactly the full fixpoint (computed
// with the naive oracle strategy) restricted to the goal — while deriving
// fewer facts whenever the goal is selective.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/programs.h"
#include "query/adornment.h"
#include "query/magic.h"
#include "transducer/genome.h"
#include "transducer/library.h"

namespace seqlog {
namespace {

using RowList = std::vector<RenderedRow>;
using Pattern = std::vector<std::optional<std::string>>;

/// Naive full fixpoint of `engine`, restricted to `pred` rows matching
/// `pattern` (nullopt = any value).
RowList FullRestricted(Engine* engine, const std::string& pred,
                       const Pattern& pattern) {
  eval::EvalOptions options;
  options.strategy = eval::Strategy::kNaive;
  eval::EvalOutcome outcome = engine->Evaluate(options);
  EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  Result<RowList> rows = engine->Query(pred);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  RowList out;
  if (!rows.ok()) return out;
  for (const RenderedRow& row : rows.value()) {
    bool match = row.size() == pattern.size();
    for (size_t i = 0; match && i < row.size(); ++i) {
      if (pattern[i].has_value() && row[i] != *pattern[i]) match = false;
    }
    if (match) out.push_back(row);
  }
  return out;
}

/// The property: Solve(goal) == naive full fixpoint restricted to goal.
void ExpectMagicMatchesNaive(Engine* engine, const std::string& goal,
                             const std::string& pred,
                             const Pattern& pattern) {
  SolveOutcome solved = engine->Solve(goal);
  ASSERT_TRUE(solved.status.ok())
      << goal << ": " << solved.status.ToString();
  EXPECT_EQ(solved.answers, FullRestricted(engine, pred, pattern))
      << "magic != naive for goal " << goal;
}

// ------------------------------------------------------------ adornment
TEST(Adornment, SuffixGoalIsBindableAndBound) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  auto result =
      query::AdornProgram(engine.program(), "suffix", {true});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // X is guarded by r(X) and X[N:end] is non-constructive.
  EXPECT_EQ(result->goal_adornment, "b");
  ASSERT_EQ(result->reachable.size(), 1u);
  EXPECT_EQ(result->reachable[0].first, "suffix");
}

TEST(Adornment, ConstructiveHeadPositionIsDemoted) {
  Engine engine;
  auto transcribe =
      transducer::MakeTranscribe("transcribe", engine.symbols());
  ASSERT_TRUE(transcribe.ok());
  ASSERT_TRUE(engine.RegisterTransducer(transcribe.value()).ok());
  auto translate = transducer::MakeTranslate("translate", engine.symbols());
  ASSERT_TRUE(translate.ok());
  ASSERT_TRUE(engine.RegisterTransducer(translate.value()).ok());
  ASSERT_TRUE(engine.LoadProgram(programs::kGenomePipeline).ok());

  // rnaseq(D, @transcribe(D)): D is bindable, the @-term is a sink.
  auto result = query::AdornProgram(engine.program(), "rnaseq",
                                    {true, true});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->goal_adornment, "bf");
  // Demand never reaches proteinseq: it depends on rnaseq, not the
  // other way around.
  for (const auto& [pred, adornment] : result->reachable) {
    EXPECT_NE(pred, "proteinseq") << adornment;
  }
}

TEST(Adornment, UnguardedHeadVariableIsNotBindable) {
  Engine engine;
  // rep1(X, X) :- true. leaves X unguarded: binding it from a goal
  // would substitute goal constants for a domain enumeration.
  ASSERT_TRUE(engine.LoadProgram(programs::kRep1).ok());
  auto result = query::AdornProgram(engine.program(), "rep1",
                                    {true, true});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->goal_adornment, "ff");
}

TEST(Adornment, UnknownGoalPredicateIsRejected) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  auto result = query::AdornProgram(engine.program(), "nosuch", {true});
  EXPECT_FALSE(result.ok());
}

TEST(Adornment, NamingConventions) {
  EXPECT_EQ(query::AdornedName("p", "bf"), "p__bf");
  EXPECT_EQ(query::MagicName("p", "bf"), "magic__p__bf");
}

// --------------------------------------------------------------- Solve
TEST(Solve, BoundSuffixGoalDerivesFewerFacts) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgtacgt"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ttttgggg"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"cgcgcgcg"}).ok());

  SolveOutcome solved = engine.Solve("?- suffix(acgt).");
  ASSERT_TRUE(solved.status.ok()) << solved.status.ToString();
  EXPECT_EQ(solved.answers, (RowList{{"acgt"}}));
  EXPECT_EQ(solved.stats.goal_adornment, "b");

  eval::EvalOutcome full = engine.Evaluate();
  ASSERT_TRUE(full.status.ok());
  size_t full_derived = full.stats.facts - engine.edb().TotalFacts();
  // Full evaluation materialises every suffix of every sequence; the
  // demand run derives the goal fact plus a handful of magic atoms.
  EXPECT_LT(solved.stats.derived_facts, full_derived);
  EXPECT_GE(full_derived, 5 * (solved.stats.derived_facts -
                               solved.stats.magic_facts));
}

TEST(Solve, MissGoalReturnsNoAnswers) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgt"}).ok());
  SolveOutcome solved = engine.Solve("?- suffix(ttt).");
  ASSERT_TRUE(solved.status.ok()) << solved.status.ToString();
  EXPECT_TRUE(solved.answers.empty());
}

TEST(Solve, AllFreeGoalDegeneratesToFullEvaluation) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ab"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"cd"}).ok());
  SolveOutcome solved = engine.Solve("?- suffix(X).");
  ASSERT_TRUE(solved.status.ok()) << solved.status.ToString();
  EXPECT_EQ(solved.stats.goal_adornment, "f");
  // Same answers as Evaluate + Query.
  ASSERT_TRUE(engine.Evaluate().status.ok());
  Result<RowList> full = engine.Query("suffix");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(solved.answers, full.value());
}

TEST(Solve, GoalOnEdbPredicate) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgt"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"tt"}).ok());

  SolveOutcome all = engine.Solve("?- r(X).");
  ASSERT_TRUE(all.status.ok()) << all.status.ToString();
  EXPECT_EQ(all.answers, (RowList{{"acgt"}, {"tt"}}));

  SolveOutcome hit = engine.Solve("?- r(tt).");
  ASSERT_TRUE(hit.status.ok());
  EXPECT_EQ(hit.answers, (RowList{{"tt"}}));

  SolveOutcome miss = engine.Solve("?- r(gg).");
  ASSERT_TRUE(miss.status.ok());
  EXPECT_TRUE(miss.answers.empty());
}

TEST(Solve, UnknownPredicateIsNotFound) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  SolveOutcome solved = engine.Solve("?- nosuch(acgt).");
  EXPECT_EQ(solved.status.code(), StatusCode::kNotFound)
      << solved.status.ToString();
}

TEST(Solve, ArityMismatchIsInvalid) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  SolveOutcome solved = engine.Solve("?- suffix(a, b).");
  EXPECT_EQ(solved.status.code(), StatusCode::kInvalidArgument)
      << solved.status.ToString();
}

TEST(Solve, NonGroundCompositeArgumentIsInvalid) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  SolveOutcome solved = engine.Solve("?- suffix(X[1:2]).");
  EXPECT_EQ(solved.status.code(), StatusCode::kInvalidArgument)
      << solved.status.ToString();
}

TEST(Solve, GroundCompositeArgumentsAreEvaluated) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgt"}).ok());
  // acgtacgt[5:end] = acgt, ac ++ gt = acgt.
  for (const char* goal :
       {"?- suffix(acgtacgt[5:end]).", "?- suffix(ac ++ gt)."}) {
    SolveOutcome solved = engine.Solve(goal);
    ASSERT_TRUE(solved.status.ok()) << goal << ": "
                                    << solved.status.ToString();
    EXPECT_EQ(solved.answers, (RowList{{"acgt"}})) << goal;
  }
}

TEST(Solve, RepeatedGoalVariablesJoin) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("pair(X, Y) :- r(X), r(Y).").ok());
  ASSERT_TRUE(engine.AddFact("r", {"a"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"b"}).ok());
  SolveOutcome solved = engine.Solve("?- pair(X, X).");
  ASSERT_TRUE(solved.status.ok()) << solved.status.ToString();
  EXPECT_EQ(solved.answers, (RowList{{"a", "a"}, {"b", "b"}}));
}

TEST(Solve, PredicateWithBothFactsAndClausesImportsItsFacts) {
  Engine engine;
  // `reach` is extensional (edges) *and* derived (closure).
  ASSERT_TRUE(
      engine.LoadProgram("reach(X, Z) :- reach(X, Y), reach(Y, Z).").ok());
  ASSERT_TRUE(engine.AddFact("reach", {"a", "b"}).ok());
  ASSERT_TRUE(engine.AddFact("reach", {"b", "c"}).ok());
  ASSERT_TRUE(engine.AddFact("reach", {"c", "d"}).ok());
  SolveOutcome solved = engine.Solve("?- reach(a, X).");
  ASSERT_TRUE(solved.status.ok()) << solved.status.ToString();
  EXPECT_EQ(solved.answers, (RowList{{"a", "b"}, {"a", "c"}, {"a", "d"}}));
}

TEST(Solve, UnsafeAfterRewriteIsRejected) {
  // Strongly safe as written (the only constructive edge p -> e lies on
  // no cycle), but the magic guard edge p__f -> magic__p__f closes the
  // cycle magic__p__f -> s__b -> p__f, so demand evaluation loses the
  // Theorem 8 guarantee and the goal must be refused.
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("p(X ++ a) :- e(X).\n"
                                 "s(X) :- p(X).\n"
                                 "h(X) :- s(X), p(X).\n")
                  .ok());
  ASSERT_TRUE(engine.AnalyzeSafety().strongly_safe);
  SolveOutcome solved = engine.Solve("?- h(aa).");
  EXPECT_EQ(solved.status.code(), StatusCode::kFailedPrecondition)
      << solved.status.ToString();
}

TEST(Solve, DivergentProgramStillBudgeted) {
  // kRep2 is not strongly safe to begin with, so the goal is accepted
  // and hits the evaluation budget exactly like Evaluate would.
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kRep2).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ab"}).ok());
  query::SolveOptions options;
  options.eval.limits.max_domain_sequences = 5000;
  options.eval.limits.max_iterations = 1000;
  SolveOutcome solved = engine.Solve("?- rep2(abab, ab).", options);
  EXPECT_EQ(solved.status.code(), StatusCode::kResourceExhausted)
      << solved.status.ToString();
}

// ------------------------------------------- paper-example property set
TEST(SolveProperty, Ex11Suffixes) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"abc"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"aabb"}).ok());
  ExpectMagicMatchesNaive(&engine, "?- suffix(bc).", "suffix", {{"bc"}});
  ExpectMagicMatchesNaive(&engine, "?- suffix(eps).", "suffix", {{""}});
  ExpectMagicMatchesNaive(&engine, "?- suffix(zz).", "suffix", {{"zz"}});
  ExpectMagicMatchesNaive(&engine, "?- suffix(X).", "suffix",
                          {std::nullopt});
}

TEST(SolveProperty, Ex12ConcatPairs) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kConcatPairs).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ab"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"c"}).ok());
  ExpectMagicMatchesNaive(&engine, "?- answer(abc).", "answer", {{"abc"}});
  ExpectMagicMatchesNaive(&engine, "?- answer(ba).", "answer", {{"ba"}});
  ExpectMagicMatchesNaive(&engine, "?- answer(X).", "answer",
                          {std::nullopt});
}

TEST(SolveProperty, Ex13AnBnCn) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kAbcN).ok());
  ASSERT_TRUE(engine.AddFact("r", {"aabbcc"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"abc"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acb"}).ok());
  ExpectMagicMatchesNaive(&engine, "?- answer(aabbcc).", "answer",
                          {{"aabbcc"}});
  ExpectMagicMatchesNaive(&engine, "?- answer(acb).", "answer", {{"acb"}});
}

TEST(SolveProperty, Ex14Reverse) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kReverse).ok());
  ASSERT_TRUE(engine.AddFact("r", {"abc"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"a"}).ok());
  ExpectMagicMatchesNaive(&engine, "?- answer(cba).", "answer", {{"cba"}});
  ExpectMagicMatchesNaive(&engine, "?- answer(abc).", "answer", {{"abc"}});
  ExpectMagicMatchesNaive(&engine, "?- answer(X).", "answer",
                          {std::nullopt});
}

TEST(SolveProperty, Ex15Rep1) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kRep1).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ababab"}).ok());
  ExpectMagicMatchesNaive(&engine, "?- rep1(ababab, ab).", "rep1",
                          {{"ababab"}, {"ab"}});
  ExpectMagicMatchesNaive(&engine, "?- rep1(ababab, aba).", "rep1",
                          {{"ababab"}, {"aba"}});
  ExpectMagicMatchesNaive(&engine, "?- rep1(abab, X).", "rep1",
                          {{"abab"}, std::nullopt});
}

TEST(SolveProperty, Ex51Stratified) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kStratifiedDouble).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ab"}).ok());
  ExpectMagicMatchesNaive(&engine, "?- double(abab).", "double",
                          {{"abab"}});
  ExpectMagicMatchesNaive(&engine, "?- quadruple(abababab).", "quadruple",
                          {{"abababab"}});
  ExpectMagicMatchesNaive(&engine, "?- quadruple(ab).", "quadruple",
                          {{"ab"}});
}

TEST(SolveProperty, Ex71GenomePipeline) {
  Engine engine;
  auto transcribe =
      transducer::MakeTranscribe("transcribe", engine.symbols());
  ASSERT_TRUE(transcribe.ok());
  ASSERT_TRUE(engine.RegisterTransducer(transcribe.value()).ok());
  auto translate = transducer::MakeTranslate("translate", engine.symbols());
  ASSERT_TRUE(translate.ok());
  ASSERT_TRUE(engine.RegisterTransducer(translate.value()).ok());
  ASSERT_TRUE(engine.LoadProgram(programs::kGenomePipeline).ok());
  ASSERT_TRUE(engine.AddFact("dnaseq", {"acgtacgt"}).ok());
  ASSERT_TRUE(engine.AddFact("dnaseq", {"ttacgc"}).ok());
  ExpectMagicMatchesNaive(&engine, "?- rnaseq(acgtacgt, X).", "rnaseq",
                          {{"acgtacgt"}, std::nullopt});
  ExpectMagicMatchesNaive(&engine, "?- proteinseq(acgtacgt, X).",
                          "proteinseq", {{"acgtacgt"}, std::nullopt});
  ExpectMagicMatchesNaive(&engine, "?- rnaseq(gg, X).", "rnaseq",
                          {{"gg"}, std::nullopt});
}

TEST(SolveProperty, Ex72TranscribeSimulation) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kTranscribeSimulation).ok());
  ASSERT_TRUE(engine.AddFact("dnaseq", {"acgt"}).ok());
  ASSERT_TRUE(engine.AddFact("dnaseq", {"ttag"}).ok());
  ExpectMagicMatchesNaive(&engine, "?- rnaseq(acgt, X).", "rnaseq",
                          {{"acgt"}, std::nullopt});
  ExpectMagicMatchesNaive(&engine, "?- rnaseq(acgt, ugca).", "rnaseq",
                          {{"acgt"}, {"ugca"}});
}

}  // namespace
}  // namespace seqlog
