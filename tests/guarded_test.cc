// Tests for the Appendix B guarded transformation (Theorem 10): the
// transformed program is guarded and expresses the same queries.
#include <gtest/gtest.h>

#include "analysis/guarded.h"
#include "ast/validate.h"
#include "core/engine.h"
#include "core/programs.h"

namespace seqlog {
namespace {

using RowList = std::vector<RenderedRow>;

TEST(GuardedTransform, ResultIsGuarded) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kRep1).ok());
  EXPECT_FALSE(ast::IsGuarded(engine.program()));
  ast::Program guarded =
      analysis::GuardedTransform(engine.program(), {{"r", 1}});
  EXPECT_TRUE(ast::IsGuarded(guarded));
  EXPECT_TRUE(ast::Validate(guarded).ok());
}

TEST(GuardedTransform, DomPredicateNameAvoidsCollisions) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("dom__(X) :- r(X).").ok());
  EXPECT_EQ(analysis::DomPredicateName(engine.program()), "dom__x");
}

TEST(GuardedTransform, PreservesAnswersOnUnguardedPrograms) {
  // rep1 is the paper's canonically unguarded program: rep1(X, X) :- true
  // ranges X over the whole extended domain. The guarded version must
  // produce the same rep1 extent.
  Engine original;
  ASSERT_TRUE(original.LoadProgram(programs::kRep1).ok());
  ASSERT_TRUE(original.AddFact("r", {"abab"}).ok());
  ASSERT_TRUE(original.Evaluate().status.ok());
  auto original_rows = original.Query("rep1");
  ASSERT_TRUE(original_rows.ok());

  Engine guarded_engine;
  // Parse with the same syntax, then transform.
  ASSERT_TRUE(guarded_engine.LoadProgram(programs::kRep1).ok());
  ast::Program guarded = analysis::GuardedTransform(
      guarded_engine.program(), {{"r", 1}});
  ASSERT_TRUE(guarded_engine.LoadProgramAst(guarded).ok());
  ASSERT_TRUE(guarded_engine.AddFact("r", {"abab"}).ok());
  ASSERT_TRUE(guarded_engine.Evaluate().status.ok());
  auto guarded_rows = guarded_engine.Query("rep1");
  ASSERT_TRUE(guarded_rows.ok());

  EXPECT_EQ(original_rows.value(), guarded_rows.value());
}

TEST(GuardedTransform, PreservesAnswersOnSuffixProgram) {
  Engine original;
  ASSERT_TRUE(original.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(original.AddFact("r", {"abcd"}).ok());
  ASSERT_TRUE(original.Evaluate().status.ok());
  auto original_rows = original.Query("suffix");
  ASSERT_TRUE(original_rows.ok());

  Engine transformed;
  ASSERT_TRUE(transformed.LoadProgram(programs::kSuffixes).ok());
  ast::Program guarded =
      analysis::GuardedTransform(transformed.program(), {{"r", 1}});
  ASSERT_TRUE(transformed.LoadProgramAst(guarded).ok());
  ASSERT_TRUE(transformed.AddFact("r", {"abcd"}).ok());
  ASSERT_TRUE(transformed.Evaluate().status.ok());
  auto rows = transformed.Query("suffix");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(original_rows.value(), rows.value());
}

TEST(GuardedTransform, DomContainsTheExtendedActiveDomain) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("p(X[1:2]) :- r(X).").ok());
  ast::Program guarded =
      analysis::GuardedTransform(engine.program(), {{"r", 1}});
  ASSERT_TRUE(engine.LoadProgramAst(guarded).ok());
  ASSERT_TRUE(engine.AddFact("r", {"abc"}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  auto rows = engine.Query("dom__");
  ASSERT_TRUE(rows.ok());
  // Appendix B clauses (2)+(3): dom holds every sequence in the extended
  // active domain of the database: eps, a, b, c, ab, bc, abc.
  EXPECT_EQ(rows.value(), (RowList{{""},
                                   {"a"},
                                   {"ab"},
                                   {"abc"},
                                   {"b"},
                                   {"bc"},
                                   {"c"}}));
}

TEST(GuardedTransform, SchemaPredicatesAreCovered) {
  // A base predicate that never appears in the program text must still
  // feed dom (clauses (3) are generated from the schema).
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("p(X) :- r(X).").ok());
  ast::Program guarded = analysis::GuardedTransform(
      engine.program(), {{"r", 1}, {"extra", 2}});
  bool has_extra_rule = false;
  for (const ast::Clause& c : guarded.clauses) {
    for (const ast::Atom& a : c.body) {
      if (a.kind == ast::Atom::Kind::kPredicate &&
          a.predicate == "extra") {
        has_extra_rule = true;
      }
    }
  }
  EXPECT_TRUE(has_extra_rule);
}

}  // namespace
}  // namespace seqlog
