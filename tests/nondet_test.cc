// Tests for nondeterministic generalized sequence transducers (the
// generalization noted after Definition 7). Covers: set-of-outputs
// semantics, termination/finiteness, subtransducer branching, budgets,
// builder restrictions, and the embedding of deterministic machines
// (LiftDeterministic) as the single-output special case.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sequence/sequence_pool.h"
#include "sequence/symbol_table.h"
#include "transducer/library.h"
#include "transducer/nondet.h"

namespace seqlog {
namespace transducer {
namespace {

class NondetTest : public ::testing::Test {
 protected:
  SeqId Seq(std::string_view text) {
    return pool_.FromChars(text, &symbols_);
  }
  std::string Render(SeqId id) { return pool_.Render(id, symbols_); }

  std::vector<std::string> RenderAll(const std::vector<SeqId>& ids) {
    std::vector<std::string> out;
    out.reserve(ids.size());
    for (SeqId id : ids) out.push_back(Render(id));
    std::sort(out.begin(), out.end());
    return out;
  }

  Symbol Sym(std::string_view name) { return symbols_.Intern(name); }

  /// A machine that rewrites every input symbol to '0' or '1',
  /// nondeterministically: outputs = all binary strings of the input's
  /// length.
  std::shared_ptr<const NondetTransducer> MakeBinaryGuess() {
    NondetBuilder b("guess", 1);
    StateId q = b.State("q");
    b.Add(q, {SymPattern::Any()}, q, {HeadMove::kAdvance},
          NdOutput::Emit(Sym("0")));
    b.Add(q, {SymPattern::Any()}, q, {HeadMove::kAdvance},
          NdOutput::Emit(Sym("1")));
    auto m = b.Build();
    EXPECT_TRUE(m.ok()) << m.status().ToString();
    return m.value();
  }

  /// Copy-or-skip per symbol: outputs = all scattered subsequences.
  std::shared_ptr<const NondetTransducer> MakeScatter() {
    NondetBuilder b("scatter", 1);
    StateId q = b.State("q");
    b.Add(q, {SymPattern::Any()}, q, {HeadMove::kAdvance},
          NdOutput::Echo(0));
    b.Add(q, {SymPattern::Any()}, q, {HeadMove::kAdvance},
          NdOutput::Epsilon());
    auto m = b.Build();
    EXPECT_TRUE(m.ok()) << m.status().ToString();
    return m.value();
  }

  SymbolTable symbols_;
  SequencePool pool_;
};

TEST_F(NondetTest, BinaryGuessEnumeratesAllStrings) {
  auto m = MakeBinaryGuess();
  auto out = m->RunAll(std::vector<SeqId>{Seq("abc")}, &pool_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 8u);  // 2^3 binary strings
  EXPECT_EQ(RenderAll(*out),
            (std::vector<std::string>{"000", "001", "010", "011", "100",
                                      "101", "110", "111"}));
}

TEST_F(NondetTest, ScatterEnumeratesSubsequences) {
  auto m = MakeScatter();
  auto out = m->RunAll(std::vector<SeqId>{Seq("abc")}, &pool_);
  ASSERT_TRUE(out.ok());
  // All 8 copy/skip choices; distinct symbols make all outputs distinct.
  EXPECT_EQ(RenderAll(*out),
            (std::vector<std::string>{"", "a", "ab", "abc", "ac", "b",
                                      "bc", "c"}));
}

TEST_F(NondetTest, DuplicateRunsCollapseToOneOutput) {
  auto m = MakeScatter();
  // "aa": the runs skip/copy choices collide; only 3 distinct outputs.
  auto out = m->RunAll(std::vector<SeqId>{Seq("aa")}, &pool_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(RenderAll(*out), (std::vector<std::string>{"", "a", "aa"}));
}

TEST_F(NondetTest, EmptyInputYieldsOnlyTheEmptyRun) {
  auto m = MakeBinaryGuess();
  auto out = m->RunAll(std::vector<SeqId>{kEmptySeq}, &pool_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(RenderAll(*out), (std::vector<std::string>{""}));
}

TEST_F(NondetTest, StuckBranchesContributeNothing) {
  // Partial delta: 'a' can advance, 'b' has no rule — inputs containing
  // 'b' abort that branch; a machine stuck on all branches yields the
  // empty set (not an error), like a rejecting nondeterministic
  // automaton.
  NondetBuilder b("picky", 1);
  StateId q = b.State("q");
  b.Add(q, {SymPattern::Exact(Sym("a"))}, q, {HeadMove::kAdvance},
        NdOutput::Echo(0));
  auto m = b.Build();
  ASSERT_TRUE(m.ok());
  auto ok_run = (*m)->RunAll(std::vector<SeqId>{Seq("aa")}, &pool_);
  ASSERT_TRUE(ok_run.ok());
  EXPECT_EQ(RenderAll(*ok_run), (std::vector<std::string>{"aa"}));
  auto stuck = (*m)->RunAll(std::vector<SeqId>{Seq("ab")}, &pool_);
  ASSERT_TRUE(stuck.ok());
  EXPECT_TRUE(stuck->empty());
}

TEST_F(NondetTest, SubtransducerCallBranchesPerCalleeOutput) {
  // Caller: on its single symbol, either keeps its output or calls a
  // nondeterministic callee that rewrites the current output (tape 2)
  // symbolwise to 0/1. Outputs for input "x": from the epsilon branch
  // "" and from the call branch all binary strings of length 0 = "".
  // Use two symbols to see the branching: first step emits 'a', second
  // step calls the guess-rewriter on output "a" -> {"0","1"}.
  NondetBuilder sub("rewrite", 2);
  StateId s = sub.State("s");
  // Consume tape 1 (original input) first, then rewrite tape 2.
  sub.Add(s, {SymPattern::Any(), SymPattern::Wildcard()}, s,
          {HeadMove::kAdvance, HeadMove::kStay}, NdOutput::Epsilon());
  sub.Add(s, {SymPattern::Marker(), SymPattern::Any()}, s,
          {HeadMove::kStay, HeadMove::kAdvance}, NdOutput::Emit(Sym("0")));
  sub.Add(s, {SymPattern::Marker(), SymPattern::Any()}, s,
          {HeadMove::kStay, HeadMove::kAdvance}, NdOutput::Emit(Sym("1")));
  auto callee = sub.Build();
  ASSERT_TRUE(callee.ok()) << callee.status().ToString();
  ASSERT_EQ((*callee)->NumInputs(), 2u);

  NondetBuilder top("caller", 1);
  StateId q = top.State("q");
  top.Add(q, {SymPattern::Any()}, q, {HeadMove::kAdvance},
          NdOutput::Echo(0));
  top.Add(q, {SymPattern::Any()}, q, {HeadMove::kAdvance},
          NdOutput::Call(*callee));
  auto m = top.Build();
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ((*m)->Order(), 2);

  auto out = (*m)->RunAll(std::vector<SeqId>{Seq("ab")}, &pool_);
  ASSERT_TRUE(out.ok());
  // Step 1 on 'a': echo -> "a", or call on "" -> "".
  // Step 2 on 'b': echo appends 'b', or call rewrites each symbol.
  // Reachable outputs: "ab", {0,1} from "a", "b", "" rewritten = "",
  // i.e. {"ab","0","1","b",""}.
  EXPECT_EQ(RenderAll(*out),
            (std::vector<std::string>{"", "0", "1", "ab", "b"}));
}

TEST_F(NondetTest, RelatesChecksMembership) {
  auto m = MakeScatter();
  auto yes =
      m->Relates(std::vector<SeqId>{Seq("abc")}, Seq("ac"), &pool_);
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(yes.value());
  auto no = m->Relates(std::vector<SeqId>{Seq("abc")}, Seq("ca"), &pool_);
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(no.value());
}

TEST_F(NondetTest, OutputBudgetIsEnforced) {
  auto m = MakeBinaryGuess();
  NdRunLimits limits;
  limits.max_outputs = 100;  // 2^10 outputs > 100
  auto out = m->RunAll(std::vector<SeqId>{Seq("aaaaaaaaaa")}, &pool_,
                       limits);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(NondetTest, StepBudgetIsEnforced) {
  auto m = MakeBinaryGuess();
  NdRunLimits limits;
  limits.max_steps = 50;
  auto out = m->RunAll(std::vector<SeqId>{Seq("aaaaaaaaaa")}, &pool_,
                       limits);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(NondetTest, MemoizationCollapsesConvergingBranches) {
  // On input a^n the scatter machine has 2^n runs but only O(n^2)
  // distinct (position, output) configurations; the dedup counter shows
  // exploration is polynomial, which is what makes RunAll usable.
  auto m = MakeScatter();
  NdRunStats stats;
  auto out = m->RunAll(std::vector<SeqId>{Seq(std::string(12, 'a'))},
                       &pool_, NdRunLimits{}, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 13u);  // eps, a, ..., a^12
  EXPECT_GT(stats.dedup_hits, 0u);
  EXPECT_LT(stats.steps, 500u);  // far below 2^12 = 4096 runs
}

TEST_F(NondetTest, BuilderRejectsNoMoveRows) {
  NondetBuilder b("bad", 1);
  StateId q = b.State("q");
  b.Add(q, {SymPattern::Any()}, q, {HeadMove::kStay},
        NdOutput::Epsilon());
  auto m = b.Build();
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(NondetTest, BuilderRejectsMarkerAdvance) {
  NondetBuilder b("bad", 2);
  StateId q = b.State("q");
  b.Add(q, {SymPattern::Marker(), SymPattern::Any()}, q,
        {HeadMove::kAdvance, HeadMove::kAdvance}, NdOutput::Epsilon());
  auto m = b.Build();
  EXPECT_FALSE(m.ok());
}

TEST_F(NondetTest, BuilderRejectsArityMismatchedCallee) {
  NondetBuilder sub("sub", 1);  // should be 2 for a 1-input caller
  StateId s = sub.State("s");
  sub.Add(s, {SymPattern::Any()}, s, {HeadMove::kAdvance},
          NdOutput::Epsilon());
  auto callee = sub.Build();
  ASSERT_TRUE(callee.ok());

  NondetBuilder top("top", 1);
  StateId q = top.State("q");
  top.Add(q, {SymPattern::Any()}, q, {HeadMove::kAdvance},
          NdOutput::Call(*callee));
  auto m = top.Build();
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(NondetTest, WrongInputArityIsRejectedAtRun) {
  auto m = MakeScatter();
  auto out = m->RunAll(std::vector<SeqId>{Seq("a"), Seq("b")}, &pool_);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

/// Parameterized check: lifting a deterministic library machine gives a
/// single-output nondeterministic machine that agrees with Apply.
class LiftTest : public NondetTest,
                 public ::testing::WithParamInterface<const char*> {};

TEST_P(LiftTest, LiftedMachineAgreesWithDeterministicRun) {
  std::vector<Symbol> alphabet = {Sym("a"), Sym("b"), Sym("c")};
  auto reverse = MakeReverse("rev", alphabet);
  ASSERT_TRUE(reverse.ok());
  auto lifted = LiftDeterministic(**reverse, alphabet);
  ASSERT_TRUE(lifted.ok()) << lifted.status().ToString();
  EXPECT_EQ((*lifted)->Order(), (*reverse)->Order());

  SeqId input = Seq(GetParam());
  auto det = (*reverse)->Apply(std::vector<SeqId>{input}, &pool_);
  ASSERT_TRUE(det.ok());
  auto nd = (*lifted)->RunAll(std::vector<SeqId>{input}, &pool_);
  ASSERT_TRUE(nd.ok()) << nd.status().ToString();
  ASSERT_EQ(nd->size(), 1u);
  EXPECT_EQ((*nd)[0], det.value());
}

INSTANTIATE_TEST_SUITE_P(ReverseInputs, LiftTest,
                         ::testing::Values("", "a", "ab", "abc", "acbca",
                                           "bbbbbb", "cabcabca"));

}  // namespace
}  // namespace transducer
}  // namespace seqlog
