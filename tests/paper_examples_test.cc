// End-to-end reproduction of every numbered example in the paper,
// through the parser and the semi-naive engine.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/programs.h"
#include "transducer/genome.h"
#include "transducer/library.h"

namespace seqlog {
namespace {

using RowList = std::vector<RenderedRow>;

RowList MustQuery(const Engine& engine, std::string_view pred) {
  Result<RowList> rows = engine.Query(pred);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  return rows.ok() ? rows.value() : RowList{};
}

// ---------------------------------------------------------------- Ex 1.1
TEST(PaperExamples, Ex11SuffixesOfAllSequences) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"abc"}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  EXPECT_EQ(MustQuery(engine, "suffix"),
            (RowList{{""}, {"abc"}, {"bc"}, {"c"}}));
}

TEST(PaperExamples, Ex11SuffixesMultipleSequences) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ab"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"cd"}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  EXPECT_EQ(MustQuery(engine, "suffix"),
            (RowList{{""}, {"ab"}, {"b"}, {"cd"}, {"d"}}));
}

// ---------------------------------------------------------------- Ex 1.2
TEST(PaperExamples, Ex12AllConcatenations) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kConcatPairs).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ab"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"c"}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  EXPECT_EQ(MustQuery(engine, "answer"),
            (RowList{{"abab"}, {"abc"}, {"cab"}, {"cc"}}));
}

// ---------------------------------------------------------------- Ex 1.3
TEST(PaperExamples, Ex13AnBnCnPattern) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kAbcN).ok());
  ASSERT_TRUE(engine.AddFact("r", {"aabbcc"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"abc"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"aabbc"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acb"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"aaabbbccc"}).ok());
  eval::EvalOutcome outcome = engine.Evaluate();
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(MustQuery(engine, "answer"),
            (RowList{{"aaabbbccc"}, {"aabbcc"}, {"abc"}}));
}

TEST(PaperExamples, Ex13EmptySequenceIsInTheLanguage) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kAbcN).ok());
  ASSERT_TRUE(engine.AddFact("r", {""}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  EXPECT_EQ(MustQuery(engine, "answer"), (RowList{{""}}));
}

// ---------------------------------------------------------------- Ex 1.4
TEST(PaperExamples, Ex14ReverseBinarySequences) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kReverse).ok());
  ASSERT_TRUE(engine.AddFact("r", {"110000"}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  EXPECT_EQ(MustQuery(engine, "answer"), (RowList{{"000011"}}));
}

TEST(PaperExamples, Ex14ReverseSeveral) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kReverse).ok());
  ASSERT_TRUE(engine.AddFact("r", {"abc"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"a"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {""}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  EXPECT_EQ(MustQuery(engine, "answer"), (RowList{{""}, {"a"}, {"cba"}}));
}

// ---------------------------------------------------------------- Ex 1.5
TEST(PaperExamples, Ex15Rep1StructuralRecursionIsFinite) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kRep1).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ababab"}).ok());
  eval::EvalOutcome outcome = engine.Evaluate();
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();

  // rep1(X, Y) holds iff X = Y^n: ababab = (ab)^3 = (ababab)^1.
  Result<std::vector<RenderedRow>> rows = engine.Query("rep1");
  ASSERT_TRUE(rows.ok());
  auto has = [&](const std::string& x, const std::string& y) {
    return std::find(rows->begin(), rows->end(),
                     RenderedRow{x, y}) != rows->end();
  };
  EXPECT_TRUE(has("ababab", "ab"));
  EXPECT_TRUE(has("ababab", "ababab"));
  EXPECT_TRUE(has("abab", "ab"));
  EXPECT_FALSE(has("ababab", "aba"));
  EXPECT_FALSE(has("ababab", "a"));
}

TEST(PaperExamples, Ex15Rep2ConstructiveRecursionDiverges) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kRep2).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ab"}).ok());
  eval::EvalOptions options;
  options.limits.max_domain_sequences = 5000;
  options.limits.max_iterations = 1000;
  eval::EvalOutcome outcome = engine.Evaluate(options);
  EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted)
      << outcome.status.ToString();
}

// ---------------------------------------------------------------- Ex 1.6
TEST(PaperExamples, Ex16EchoHasInfiniteFixpointButFiniteAnswer) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kEcho).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ab"}).ok());
  eval::EvalOptions options;
  options.limits.max_domain_sequences = 20000;
  options.limits.max_iterations = 200;
  eval::EvalOutcome outcome = engine.Evaluate(options);
  // The least fixpoint is infinite: evaluation must hit the budget...
  EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted);
  // ...yet the finite answer was already derived.
  EXPECT_EQ(MustQuery(engine, "answer"), (RowList{{"ab", "aabb"}}));
}

// ---------------------------------------------------------------- Ex 5.1
TEST(PaperExamples, Ex51StratifiedConstruction) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kStratifiedDouble).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ab"}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  EXPECT_EQ(MustQuery(engine, "double"), (RowList{{"abab"}}));
  EXPECT_EQ(MustQuery(engine, "quadruple"), (RowList{{"abababab"}}));
}

TEST(PaperExamples, Ex51StratifiedStrategyMatches) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kStratifiedDouble).ok());
  ASSERT_TRUE(engine.AddFact("r", {"xy"}).ok());
  eval::EvalOptions options;
  options.strategy = eval::Strategy::kStratified;
  eval::EvalOutcome outcome = engine.Evaluate(options);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(MustQuery(engine, "quadruple"), (RowList{{"xyxyxyxy"}}));
}

// ---------------------------------------------------------------- Ex 7.1
TEST(PaperExamples, Ex71GenomePipelineWithTransducers) {
  Engine engine;
  auto transcribe =
      transducer::MakeTranscribe("transcribe", engine.symbols());
  ASSERT_TRUE(transcribe.ok());
  ASSERT_TRUE(engine.RegisterTransducer(transcribe.value()).ok());
  auto translate = transducer::MakeTranslate("translate", engine.symbols());
  ASSERT_TRUE(translate.ok());
  ASSERT_TRUE(engine.RegisterTransducer(translate.value()).ok());

  ASSERT_TRUE(engine.LoadProgram(programs::kGenomePipeline).ok());
  // acgtacgt transcribes to ugcaugca (the paper's example).
  ASSERT_TRUE(engine.AddFact("dnaseq", {"acgtacgt"}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  EXPECT_EQ(MustQuery(engine, "rnaseq"),
            (RowList{{"acgtacgt", "ugcaugca"}}));
  // ugc=C, aug=M, ca dropped (incomplete codon).
  EXPECT_EQ(MustQuery(engine, "proteinseq"),
            (RowList{{"acgtacgt", "CM"}}));
}

// ---------------------------------------------------------------- Ex 7.2
TEST(PaperExamples, Ex72TranscriptionSimulatedInSequenceDatalog) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kTranscribeSimulation).ok());
  ASSERT_TRUE(engine.AddFact("dnaseq", {"acgtacgt"}).ok());
  eval::EvalOutcome outcome = engine.Evaluate();
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(MustQuery(engine, "rnaseq"),
            (RowList{{"acgtacgt", "ugcaugca"}}));
}

// ---------------------------------------------------------------- Ex 8.1
TEST(PaperExamples, Ex81SafetyClassification) {
  // Checked in depth in analysis_test.cc; here: the programs parse and
  // classify as the paper states.
  Engine e1;
  auto t1 = transducer::MakeIdentity("t1");
  auto t2 = transducer::MakeIdentity("t2");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(e1.RegisterTransducer(t1.value()).ok());
  ASSERT_TRUE(e1.RegisterTransducer(t2.value()).ok());
  ASSERT_TRUE(e1.LoadProgram(programs::kP1).ok());
  EXPECT_TRUE(e1.AnalyzeSafety().strongly_safe);

  Engine e2;
  auto t = transducer::MakeIdentity("t");
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(e2.RegisterTransducer(t.value()).ok());
  ASSERT_TRUE(e2.LoadProgram(programs::kP2).ok());
  EXPECT_FALSE(e2.AnalyzeSafety().strongly_safe);

  Engine e3;
  ASSERT_TRUE(e3.RegisterTransducer(t.value()).ok());
  ASSERT_TRUE(e3.LoadProgram(programs::kP3).ok());
  EXPECT_FALSE(e3.AnalyzeSafety().strongly_safe);
}

}  // namespace
}  // namespace seqlog
