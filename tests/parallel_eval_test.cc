// Parallel semi-naive evaluation: the model computed at any thread
// count must be identical to the single-threaded legacy path — same
// answer sets, same iteration count, same derivation count — across the
// paper-example corpus and the Example 7.1 genome workload. Also unit
// tests for base/thread_pool.h, and budget behaviour under parallelism.
//
// These suites (with concurrency_test.cc) are the TSan CI targets: the
// parallel evaluator must be clean under -fsanitize=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "base/thread_pool.h"
#include "core/engine.h"
#include "core/programs.h"
#include "transducer/genome.h"

namespace seqlog {
namespace {

// ---------------------------------------------------------------------
// ThreadPool unit tests
// ---------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  for (int job = 0; job < 100; ++job) {
    pool.ParallelFor(17, [&](size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 1700u);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  size_t sum = 0;  // no atomics needed: everything runs on this thread
  pool.ParallelFor(10, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum, 45u);
}

TEST(ThreadPoolTest, ZeroTasksIsANoOp) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

// ---------------------------------------------------------------------
// Parallel == serial over the paper corpus
// ---------------------------------------------------------------------

struct Corpus {
  const char* name;
  const char* program;
  std::vector<std::string> predicates;
};

const Corpus kCorpus[] = {
    {"suffixes", programs::kSuffixes, {"suffix"}},
    {"concat_pairs", programs::kConcatPairs, {"answer"}},
    {"abc_n", programs::kAbcN, {"answer"}},
    {"reverse", programs::kReverse, {"answer", "reverse"}},
    {"rep1", programs::kRep1, {"rep1"}},
    {"stratified", programs::kStratifiedDouble, {"double", "quadruple"}},
    {"transcribe", programs::kTranscribeSimulation, {"rnaseq"}},
    {"prefix_chain",
     "pre(X[1:N]) :- r(X).\n"
     "rev(X) :- pre(X), X[1] = a.\n"
     "short(X[2:end]) :- rev(X).\n",
     {"pre", "rev", "short"}},
};

std::vector<std::string> RandomSequences(unsigned seed, size_t count,
                                         size_t max_len,
                                         std::string_view alphabet) {
  std::mt19937 rng(seed);
  std::vector<std::string> out;
  for (size_t i = 0; i < count; ++i) {
    std::uniform_int_distribution<size_t> len_dist(0, max_len);
    size_t len = len_dist(rng);
    std::string s;
    for (size_t j = 0; j < len; ++j) {
      s += alphabet[rng() % alphabet.size()];
    }
    out.push_back(std::move(s));
  }
  return out;
}

class ParallelEvalAgreement : public ::testing::TestWithParam<Corpus> {};

TEST_P(ParallelEvalAgreement, SameModelAtEveryThreadCount) {
  const Corpus& corpus = GetParam();
  std::string_view alphabet =
      std::string_view(corpus.name) == "transcribe" ? "acgt" : "abc";
  std::string base_pred =
      std::string_view(corpus.name) == "transcribe" ? "dnaseq" : "r";
  std::vector<std::string> seqs = RandomSequences(7, 4, 6, alphabet);

  std::map<size_t, std::map<std::string, std::vector<RenderedRow>>> rows;
  std::map<size_t, eval::EvalStats> stats;
  for (size_t threads : {1u, 2u, 8u}) {
    Engine engine;
    ASSERT_TRUE(engine.LoadProgram(corpus.program).ok());
    for (const std::string& s : seqs) {
      ASSERT_TRUE(engine.AddFact(base_pred, {s}).ok());
    }
    eval::EvalOptions options;
    options.num_threads = threads;
    options.limits.max_iterations = 2000;
    eval::EvalOutcome outcome = engine.Evaluate(options);
    ASSERT_TRUE(outcome.status.ok())
        << corpus.name << " threads=" << threads << ": "
        << outcome.status.ToString();
    stats[threads] = outcome.stats;
    for (const std::string& pred : corpus.predicates) {
      auto result = engine.Query(pred);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      rows[threads][pred] = result.value();
    }
  }
  for (size_t threads : {2u, 8u}) {
    for (const std::string& pred : corpus.predicates) {
      EXPECT_EQ(rows[1][pred], rows[threads][pred])
          << corpus.name << "/" << pred << " threads=" << threads;
    }
    // Rounds and derivation attempts are schedule-independent: shards
    // cover each delta disjointly and the merged per-round sets match
    // the serial ones, so the counters must agree exactly.
    EXPECT_EQ(stats[1].facts, stats[threads].facts) << corpus.name;
    EXPECT_EQ(stats[1].iterations, stats[threads].iterations)
        << corpus.name;
    EXPECT_EQ(stats[1].derivations, stats[threads].derivations)
        << corpus.name;
    EXPECT_EQ(stats[1].domain_sequences, stats[threads].domain_sequences)
        << corpus.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ParallelEvalAgreement, ::testing::ValuesIn(kCorpus),
    [](const ::testing::TestParamInfo<Corpus>& info) {
      return std::string(info.param.name);
    });

// ---------------------------------------------------------------------
// Genome workload (Example 7.1, Transducer Datalog)
// ---------------------------------------------------------------------

void RegisterGenomeMachines(Engine* engine) {
  auto transcribe =
      transducer::MakeTranscribe("transcribe", engine->symbols());
  auto translate =
      transducer::MakeTranslate("translate", engine->symbols());
  ASSERT_TRUE(transcribe.ok() && translate.ok());
  ASSERT_TRUE(engine->RegisterTransducer(transcribe.value()).ok());
  ASSERT_TRUE(engine->RegisterTransducer(translate.value()).ok());
}

TEST(ParallelEvalGenome, PipelineAgreesAtEveryThreadCount) {
  std::vector<std::string> dna = RandomSequences(11, 24, 30, "acgt");
  std::map<size_t, std::map<std::string, std::vector<RenderedRow>>> rows;
  std::map<size_t, eval::EvalStats> stats;
  for (size_t threads : {1u, 2u, 8u}) {
    Engine engine;
    RegisterGenomeMachines(&engine);
    ASSERT_TRUE(engine.LoadProgram(programs::kGenomePipeline).ok());
    for (const std::string& d : dna) {
      ASSERT_TRUE(engine.AddFact("dnaseq", {d}).ok());
    }
    eval::EvalOptions options;
    options.num_threads = threads;
    eval::EvalOutcome outcome = engine.Evaluate(options);
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    stats[threads] = outcome.stats;
    for (const char* pred : {"rnaseq", "proteinseq"}) {
      auto result = engine.Query(pred);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      rows[threads][pred] = result.value();
    }
    EXPECT_EQ(rows[threads]["rnaseq"].size(), dna.size());
  }
  for (size_t threads : {2u, 8u}) {
    EXPECT_EQ(rows[1], rows[threads]) << "threads=" << threads;
    EXPECT_EQ(stats[1].facts, stats[threads].facts);
    EXPECT_EQ(stats[1].iterations, stats[threads].iterations);
    EXPECT_EQ(stats[1].derivations, stats[threads].derivations);
  }
}

// The parallel domain-closure pipeline (worker pre-interning + the
// warm-entry merge barrier + sharded membership dedup) must leave the
// domain bit-identical to the serial AddRoot path: same size, same
// enumeration order (observable through domain-sensitive clauses), same
// counters. The long DNA inputs push the per-round closure stream past
// the sharded-dedup threshold, and the EDB load past the parallel
// closure threshold, so both new paths actually execute.
TEST(ParallelEvalGenome, ClosurePipelineMatchesSerialClosure) {
  std::vector<std::string> dna = RandomSequences(23, 20, 90, "acgt");
  // A domain-sensitive clause on top of the constructive pipeline:
  // suffixes of derived RNA enumerate an index variable over the domain,
  // so any divergence in domain contents or enumeration order shows up
  // as different answers, not just different stats.
  std::string program = std::string(programs::kGenomePipeline) +
                        "rsuffix(R[N:end]) :- rnaseq(D, R).\n";
  std::map<size_t, std::map<std::string, std::vector<RenderedRow>>> rows;
  std::map<size_t, eval::EvalStats> stats;
  for (size_t threads : {1u, 2u, 8u}) {
    Engine engine;
    RegisterGenomeMachines(&engine);
    ASSERT_TRUE(engine.LoadProgram(program).ok());
    for (const std::string& d : dna) {
      ASSERT_TRUE(engine.AddFact("dnaseq", {d}).ok());
    }
    eval::EvalOptions options;
    options.num_threads = threads;
    eval::EvalOutcome outcome = engine.Evaluate(options);
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    stats[threads] = outcome.stats;
    for (const char* pred : {"rnaseq", "proteinseq", "rsuffix"}) {
      auto result = engine.Query(pred);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      rows[threads][pred] = result.value();
    }
  }
  // Enough closure work that the parallel run really took the sharded
  // barrier (90-symbol roots alone are > 4000 spans each).
  ASSERT_GE(stats[1].domain_sequences, 4096u);
  for (size_t threads : {2u, 8u}) {
    EXPECT_EQ(rows[1], rows[threads]) << "threads=" << threads;
    EXPECT_EQ(stats[1].facts, stats[threads].facts);
    EXPECT_EQ(stats[1].iterations, stats[threads].iterations);
    EXPECT_EQ(stats[1].derivations, stats[threads].derivations);
    EXPECT_EQ(stats[1].domain_sequences, stats[threads].domain_sequences);
  }
}

// domain_millis + fire_millis account the run: both phases are measured
// (nonzero on a workload this size) and bounded by the total.
TEST(ParallelEvalGenome, DomainMillisIsMeasured) {
  std::vector<std::string> dna = RandomSequences(29, 12, 80, "acgt");
  for (size_t threads : {1u, 8u}) {
    Engine engine;
    RegisterGenomeMachines(&engine);
    ASSERT_TRUE(engine.LoadProgram(programs::kGenomePipeline).ok());
    for (const std::string& d : dna) {
      ASSERT_TRUE(engine.AddFact("dnaseq", {d}).ok());
    }
    eval::EvalOptions options;
    options.num_threads = threads;
    eval::EvalOutcome outcome = engine.Evaluate(options);
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_GT(outcome.stats.domain_millis(), 0.0)
        << "threads=" << threads;
    // The load/merge split is exhaustive: the two phase counters are
    // individually measured and sum to the combined domain time.
    EXPECT_GT(outcome.stats.domain_load_millis, 0.0);
    EXPECT_GT(outcome.stats.domain_merge_millis, 0.0);
    EXPECT_LE(outcome.stats.domain_millis(), outcome.stats.millis);
    EXPECT_LE(outcome.stats.fire_millis, outcome.stats.millis);
  }
}

// ---------------------------------------------------------------------
// Delta sharding: a round whose delta is thousands of rows splits one
// firing across workers; the merged result must still match serial.
// ---------------------------------------------------------------------

TEST(ParallelEvalSharding, LargeDeltaRoundMatchesSerial) {
  // Round 1 derives every prefix of every r sequence (thousands of
  // pre-facts); round 2 fires copy/keep on that large delta, which is
  // exactly the sharded path when threads > 1.
  const char* program =
      "pre(X[1:N]) :- r(X).\n"
      "copy(X) :- pre(X).\n"
      "keep(X[2:end]) :- copy(X).\n";
  std::vector<std::string> seqs = RandomSequences(3, 80, 40, "ab");

  std::map<size_t, std::vector<RenderedRow>> copies;
  std::map<size_t, eval::EvalStats> stats;
  for (size_t threads : {1u, 8u}) {
    Engine engine;
    ASSERT_TRUE(engine.LoadProgram(program).ok());
    for (const std::string& s : seqs) {
      ASSERT_TRUE(engine.AddFact("r", {s}).ok());
    }
    eval::EvalOptions options;
    options.num_threads = threads;
    eval::EvalOutcome outcome = engine.Evaluate(options);
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    stats[threads] = outcome.stats;
    auto result = engine.Query("keep");
    ASSERT_TRUE(result.ok());
    copies[threads] = result.value();
  }
  // Enough distinct prefixes that the delta really was shardable.
  ASSERT_GE(stats[1].facts, 2048u);
  EXPECT_EQ(copies[1], copies[8]);
  EXPECT_EQ(stats[1].facts, stats[8].facts);
  EXPECT_EQ(stats[1].iterations, stats[8].iterations);
  EXPECT_EQ(stats[1].derivations, stats[8].derivations);
}

// ---------------------------------------------------------------------
// Budgets under parallelism
// ---------------------------------------------------------------------

TEST(ParallelEvalBudget, MaxFactsStillFailsAtEightThreads) {
  Engine engine;
  // Two constructive clauses so the round really fans out to workers
  // (a single-task round takes the serial path regardless of width).
  ASSERT_TRUE(engine
                  .LoadProgram(
                      "answer(X ++ Y) :- r(X), r(Y).\n"
                      "backer(Y ++ X) :- r(X), r(Y).\n")
                  .ok());
  for (const std::string& s : RandomSequences(5, 60, 8, "abc")) {
    ASSERT_TRUE(engine.AddFact("r", {s}).ok());
  }
  eval::EvalOptions options;
  options.num_threads = 8;
  options.limits.max_facts = 100;
  eval::EvalOutcome outcome = engine.Evaluate(options);
  EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted)
      << outcome.status.ToString();
}

TEST(ParallelEvalBudget, MaxIterationsStillFailsAtEightThreads) {
  Engine engine;
  // Example 1.5's constructive repeats diverge; the iteration budget
  // must stop a parallel run exactly like a serial one.
  ASSERT_TRUE(engine.LoadProgram(programs::kRep2).ok());
  ASSERT_TRUE(engine.AddFact("rep2", {"ab", "ab"}).ok());
  eval::EvalOptions options;
  options.num_threads = 8;
  // rep2 doubles sequence lengths every round, so the subsequence
  // closure gets quadratically pricier — keep all three budgets tight
  // so whichever fires first does so in milliseconds.
  options.limits.max_iterations = 8;
  options.limits.max_sequence_length = 4096;
  options.limits.max_domain_sequences = 200000;
  eval::EvalOutcome outcome = engine.Evaluate(options);
  EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted)
      << outcome.status.ToString();
}

// Prepared queries execute the cached magic rewrite through the same
// evaluator: a multi-threaded Execute must return the serial answers.
TEST(ParallelEvalPrepared, PreparedQueryAgreesAcrossThreadCounts) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgtacgtacgt"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ttgacca"}).ok());
  auto pq = engine.Prepare("?- suffix($1).");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  Snapshot snap = engine.PublishSnapshot();

  std::map<size_t, std::vector<RenderedRow>> rows;
  for (size_t threads : {1u, 8u}) {
    query::SolveOptions options;
    options.eval.num_threads = threads;
    ASSERT_TRUE(pq->Bind(1, "gtacgt").ok());
    ResultSet rs = pq->Execute(snap, options);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    rows[threads] = rs.Materialize();
  }
  EXPECT_EQ(rows[1], rows[8]);
  EXPECT_EQ(rows[1].size(), 1u);
}

}  // namespace
}  // namespace seqlog
