// Failure-injection tests: every user-facing error path of the Engine.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "transducer/builder.h"
#include "transducer/library.h"

namespace seqlog {
namespace {

TEST(EngineFailure, EvaluateWithoutProgram) {
  Engine engine;
  eval::EvalOutcome outcome = engine.Evaluate();
  EXPECT_EQ(outcome.status.code(), StatusCode::kFailedPrecondition);
}

TEST(EngineFailure, QueryBeforeEvaluate) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("p(X) :- r(X).").ok());
  Status s = engine.Query("p").status();
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  // The one-line hint must name both recovery paths.
  EXPECT_EQ(s.message(), "no model computed; call Evaluate or use Solve");
}

TEST(EngineFailure, QueryIdsBeforeEvaluate) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("p(X) :- r(X).").ok());
  ASSERT_TRUE(engine.AddFact("r", {"a"}).ok());  // facts alone: no model
  Status s = engine.QueryIds("p").status();
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(s.message(), "no model computed; call Evaluate or use Solve");
}

TEST(EngineFailure, QueryAfterLoadProgramInvalidatesModel) {
  // LoadProgram resets the model: querying again needs a new Evaluate.
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("p(X) :- r(X).").ok());
  ASSERT_TRUE(engine.AddFact("r", {"a"}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  ASSERT_TRUE(engine.Query("p").ok());
  ASSERT_TRUE(engine.LoadProgram("q(X) :- r(X).").ok());
  EXPECT_EQ(engine.Query("p").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(EngineFailure, QueryUnknownPredicate) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("p(X) :- r(X).").ok());
  ASSERT_TRUE(engine.AddFact("r", {"a"}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  EXPECT_EQ(engine.Query("nope").status().code(), StatusCode::kNotFound);
}

TEST(EngineFailure, ParseErrorsSurfaceWithPositions) {
  Engine engine;
  Status s = engine.LoadProgram("p(X :- r(X).");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("1:"), std::string::npos) << s.ToString();
}

TEST(EngineFailure, LoadFailureKeepsPreviousProgram) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("p(X) :- r(X).").ok());
  ASSERT_FALSE(engine.LoadProgram("p(X) :- ").ok());
  ASSERT_TRUE(engine.AddFact("r", {"a"}).ok());
  EXPECT_TRUE(engine.Evaluate().status.ok());  // old program still there
}

TEST(EngineFailure, FactArityConflict) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("p(X) :- r(X).").ok());
  ASSERT_TRUE(engine.AddFact("r", {"a"}).ok());
  Status s = engine.AddFact("r", {"a", "b"});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(EngineFailure, ProgramFactArityConflict) {
  Engine engine;
  ASSERT_TRUE(engine.AddFact("r", {"a", "b"}).ok());
  Status s = engine.LoadProgram("p(X) :- r(X).");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(EngineFailure, NullTransducerRejected) {
  Engine engine;
  EXPECT_FALSE(engine.RegisterTransducer(nullptr).ok());
}

TEST(EngineFailure, StuckMachineDerivesNothing) {
  // A partial machine makes theta undefined at the term: no fact, no
  // error (Section 7.1 semantics).
  Engine engine;
  SymbolTable* symbols = engine.symbols();
  transducer::TransducerBuilder b("picky", 1);
  transducer::StateId q = b.State("q0");
  b.Add(q, {transducer::SymPattern::Exact(symbols->Intern("a"))}, q,
        {transducer::HeadMove::kAdvance}, transducer::Output::Echo(0));
  auto t = b.Build();
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(engine.RegisterTransducer(t.value()).ok());
  ASSERT_TRUE(engine.LoadProgram("p(@picky(X)) :- r(X).").ok());
  ASSERT_TRUE(engine.AddFact("r", {"aaa"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ab"}).ok());  // sticks the machine
  eval::EvalOutcome outcome = engine.Evaluate();
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  auto rows = engine.Query("p");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), (std::vector<RenderedRow>{{"aaa"}}));
}

TEST(EngineFailure, MachineOutputBudgetAbortsEvaluation) {
  // Unlike a stuck machine, an exhausted machine budget is a real error
  // and aborts evaluation.
  Engine engine;
  transducer::TransducerBuilder b("hungry", 1);
  transducer::StateId q = b.State("q0");
  auto append = transducer::MakeAppend("app2", 2);
  ASSERT_TRUE(append.ok());
  b.Add(q, {transducer::SymPattern::Any()}, q,
        {transducer::HeadMove::kAdvance},
        transducer::Output::Call(append.value()));
  b.SetMaxOutputLength(8);
  auto t = b.Build();
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(engine.RegisterTransducer(t.value()).ok());
  ASSERT_TRUE(engine.LoadProgram("p(@hungry(X)) :- r(X).").ok());
  ASSERT_TRUE(engine.AddFact("r", {"aaaaaa"}).ok());  // 36 > 8
  eval::EvalOutcome outcome = engine.Evaluate();
  EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted);
}

TEST(EngineFailure, TimeBudget) {
  Engine engine;
  // A program that keeps concatenating: without other budgets the time
  // limit must fire.
  ASSERT_TRUE(engine.LoadProgram("p(X ++ a) :- p(X).\np(X) :- r(X).").ok());
  ASSERT_TRUE(engine.AddFact("r", {"a"}).ok());
  eval::EvalOptions options;
  options.limits.max_millis = 50;
  options.limits.max_iterations = 100000000;
  eval::EvalOutcome outcome = engine.Evaluate(options);
  EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted);
}

TEST(EngineFailure, ClearFactsResets) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("p(X) :- r(X).").ok());
  ASSERT_TRUE(engine.AddFact("r", {"a"}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  engine.ClearFacts();
  EXPECT_EQ(engine.edb().TotalFacts(), 0u);
  ASSERT_TRUE(engine.Evaluate().status.ok());
  auto rows = engine.Query("p");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(EngineFailure, DomainBudgetOnHugeEdbSequence) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("p(X) :- r(X).").ok());
  std::string big;
  for (int i = 0; i < 400; ++i) big += static_cast<char>('a' + (i % 26));
  ASSERT_TRUE(engine.AddFact("r", {big}).ok());
  eval::EvalOptions options;
  options.limits.max_domain_sequences = 1000;  // 400*401/2 >> 1000
  eval::EvalOutcome outcome = engine.Evaluate(options);
  EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace seqlog
