// Tests for the Theorem 7 translation (Transducer Datalog -> Sequence
// Datalog) and the Corollary 1 reverse direction.
#include <gtest/gtest.h>

#include "ast/validate.h"
#include "core/engine.h"
#include "core/programs.h"
#include "translate/sd_to_td.h"
#include "translate/td_to_sd.h"
#include "transducer/genome.h"
#include "transducer/library.h"

namespace seqlog {
namespace {

using RowList = std::vector<RenderedRow>;

std::vector<Symbol> CharAlphabet(SymbolTable* symbols,
                                 std::string_view chars) {
  std::vector<Symbol> out;
  for (char c : chars) out.push_back(symbols->Intern(std::string_view(&c, 1)));
  return out;
}

/// Evaluates `td_program` directly (machines interpreted) and through the
/// Theorem 7 translation, comparing the query results.
void ExpectTranslationAgrees(
    Engine* engine, const std::string& td_program,
    const std::vector<std::pair<std::string, std::vector<std::string>>>&
        facts,
    const std::vector<std::string>& queries, std::string_view alphabet) {
  ASSERT_TRUE(engine->LoadProgram(td_program).ok());
  for (const auto& [pred, args] : facts) {
    ASSERT_TRUE(engine->AddFact(pred, args).ok());
  }
  eval::EvalOutcome direct = engine->Evaluate();
  ASSERT_TRUE(direct.status.ok()) << direct.status.ToString();
  std::map<std::string, RowList> direct_rows;
  for (const std::string& q : queries) {
    auto rows = engine->Query(q);
    ASSERT_TRUE(rows.ok());
    direct_rows[q] = rows.value();
  }

  translate::TdToSdOptions options;
  options.alphabet = CharAlphabet(engine->symbols(), alphabet);
  auto sd = translate::TransducerDatalogToSequenceDatalog(
      engine->program(), *engine->registry(), engine->symbols(),
      engine->pool(), options);
  ASSERT_TRUE(sd.ok()) << sd.status().ToString();

  ASSERT_TRUE(engine->LoadProgramAst(sd.value()).ok());
  eval::EvalOptions eval_options;
  eval_options.limits.max_iterations = 100000;
  eval::EvalOutcome translated = engine->Evaluate(eval_options);
  ASSERT_TRUE(translated.status.ok()) << translated.status.ToString();
  for (const std::string& q : queries) {
    auto rows = engine->Query(q);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows.value(), direct_rows[q]) << q;
  }
  // Theorem 7's finiteness argument: the simulation creates intermediate
  // sequences, so the translated model is larger but still finite.
  EXPECT_GE(translated.stats.facts, direct.stats.facts);
}

TEST(TdToSd, AppendProgram) {
  Engine engine;
  auto append = transducer::MakeAppend("append", 2);
  ASSERT_TRUE(append.ok());
  ASSERT_TRUE(engine.RegisterTransducer(append.value()).ok());
  ExpectTranslationAgrees(&engine,
                          "cat(X, Y, @append(X, Y)) :- r(X), s(Y).\n",
                          {{"r", {"ab"}}, {"r", {"c"}}, {"s", {"d"}}},
                          {"cat"}, "abcd");
}

TEST(TdToSd, MapProgramTranscription) {
  Engine engine;
  auto transcribe =
      transducer::MakeTranscribe("transcribe", engine.symbols());
  ASSERT_TRUE(transcribe.ok());
  ASSERT_TRUE(engine.RegisterTransducer(transcribe.value()).ok());
  ExpectTranslationAgrees(&engine,
                          "rna(D, @transcribe(D)) :- dna(D).\n",
                          {{"dna", {"acgt"}}, {"dna", {"ttag"}}},
                          {"rna"}, "acgtu");
}

TEST(TdToSd, HigherOrderSquare) {
  // Order-2 machine: the translation must emit the gamma'_4 / gamma'_5
  // subtransducer wiring rules.
  Engine engine;
  auto square = transducer::MakeSquare("square");
  ASSERT_TRUE(square.ok());
  ASSERT_TRUE(engine.RegisterTransducer(square.value()).ok());
  ExpectTranslationAgrees(&engine, "sq(@square(X)) :- r(X).\n",
                          {{"r", {"ab"}}, {"r", {"c"}}}, {"sq"}, "abc");
}

TEST(TdToSd, NestedTransducerTermsFlatten) {
  Engine engine;
  auto append = transducer::MakeAppend("append", 2);
  ASSERT_TRUE(append.ok());
  ASSERT_TRUE(engine.RegisterTransducer(append.value()).ok());
  ExpectTranslationAgrees(&engine,
                          "p(@append(X, @append(X, X))) :- r(X).\n",
                          {{"r", {"ab"}}}, {"p"}, "ab");
}

TEST(TdToSd, ReverseMachine) {
  Engine engine;
  auto reverse = transducer::MakeReverse(
      "rev", CharAlphabet(engine.symbols(), "ab"));
  ASSERT_TRUE(reverse.ok());
  ASSERT_TRUE(engine.RegisterTransducer(reverse.value()).ok());
  ExpectTranslationAgrees(&engine, "backwards(@rev(X)) :- r(X).\n",
                          {{"r", {"aab"}}, {"r", {"ba"}}}, {"backwards"},
                          "ab");
}

TEST(TdToSd, TranslationIsPureSequenceDatalog) {
  Engine engine;
  auto append = transducer::MakeAppend("append", 2);
  ASSERT_TRUE(append.ok());
  ASSERT_TRUE(engine.RegisterTransducer(append.value()).ok());
  ASSERT_TRUE(engine.LoadProgram("cat(@append(X, X)) :- r(X).").ok());
  translate::TdToSdOptions options;
  options.alphabet = CharAlphabet(engine.symbols(), "ab");
  auto sd = translate::TransducerDatalogToSequenceDatalog(
      engine.program(), *engine.registry(), engine.symbols(),
      engine.pool(), options);
  ASSERT_TRUE(sd.ok());
  EXPECT_FALSE(sd->IsTransducerDatalog());
  EXPECT_TRUE(ast::ValidateSequenceDatalog(sd.value()).ok());
}

TEST(TdToSd, UnknownMachineFails) {
  Engine engine;
  SymbolTable symbols;
  ast::Program program;
  {
    SequencePool pool;
    auto parsed = parser::ParseProgram("p(@ghost(X)) :- r(X).", &symbols,
                                       engine.pool());
    ASSERT_TRUE(parsed.ok());
    program = parsed.value();
  }
  translate::TdToSdOptions options;
  auto sd = translate::TransducerDatalogToSequenceDatalog(
      program, *engine.registry(), engine.symbols(), engine.pool(),
      options);
  EXPECT_FALSE(sd.ok());
}

// ----------------------------------------------------------- Corollary 1
TEST(SdToTd, ConcatBecomesAppend) {
  Engine engine;
  auto append = transducer::MakeAppend("append", 2);
  ASSERT_TRUE(append.ok());
  ASSERT_TRUE(engine.RegisterTransducer(append.value()).ok());

  // Evaluate the Sequence Datalog original.
  ASSERT_TRUE(engine.LoadProgram(programs::kStratifiedDouble).ok());
  ASSERT_TRUE(engine.AddFact("r", {"xy"}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  auto direct = engine.Query("quadruple");
  ASSERT_TRUE(direct.ok());

  // Rewrite ++ into @append and re-evaluate: identical fixpoint.
  auto td = translate::SequenceDatalogToTransducerDatalog(
      engine.program(), "append");
  ASSERT_TRUE(td.ok());
  EXPECT_TRUE(td->IsTransducerDatalog());
  ASSERT_TRUE(engine.LoadProgramAst(td.value()).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  auto rewritten = engine.Query("quadruple");
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(direct.value(), rewritten.value());
}

TEST(SdToTd, ReverseProgramRoundTrip) {
  Engine engine;
  auto append = transducer::MakeAppend("append", 2);
  ASSERT_TRUE(append.ok());
  ASSERT_TRUE(engine.RegisterTransducer(append.value()).ok());
  ASSERT_TRUE(engine.LoadProgram(programs::kReverse).ok());
  auto td = translate::SequenceDatalogToTransducerDatalog(
      engine.program(), "append");
  ASSERT_TRUE(td.ok());
  ASSERT_TRUE(engine.LoadProgramAst(td.value()).ok());
  ASSERT_TRUE(engine.AddFact("r", {"abc"}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  auto rows = engine.Query("answer");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), (RowList{{"cba"}}));
}

}  // namespace
}  // namespace seqlog
