// Tests for the rs-operation baseline (Section 1.1, after Ginsburg and
// Wang): pattern parsing/matching/instantiation, the s-algebra
// operators, and cross-checks against Sequence Datalog on queries both
// formalisms express (suffix extraction, pattern selection, bounded
// merges).
#include <gtest/gtest.h>

#include <random>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "rs/algebra.h"
#include "rs/pattern.h"

namespace seqlog {
namespace rs {
namespace {

class RsTest : public ::testing::Test {
 protected:
  SeqId Seq(std::string_view text) {
    return pool_.FromChars(text, &symbols_);
  }
  std::string Render(SeqId id) { return pool_.Render(id, symbols_); }

  Pattern Parse(std::string_view text) {
    auto p = Pattern::Parse(text, &pool_, &symbols_);
    EXPECT_TRUE(p.ok()) << text << ": " << p.status().ToString();
    return p.value();
  }

  /// Rendered, sorted rows of a table.
  std::vector<std::vector<std::string>> Rows(const Table& table) {
    std::vector<std::vector<std::string>> out;
    for (const auto& row : table.rows) {
      std::vector<std::string> rendered;
      rendered.reserve(row.size());
      for (SeqId id : row) rendered.push_back(Render(id));
      out.push_back(std::move(rendered));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  SymbolTable symbols_;
  SequencePool pool_;
};

TEST_F(RsTest, ParseRoundTrip) {
  for (const char* text : {"X1", "X1X2", "abX1", "X1abX2X1", "abc"}) {
    Pattern p = Parse(text);
    EXPECT_EQ(p.ToString(pool_, symbols_), text);
  }
}

TEST_F(RsTest, ParseRejectsBadInput) {
  EXPECT_FALSE(Pattern::Parse("X0", &pool_, &symbols_).ok());
  EXPECT_FALSE(Pattern::Parse("a b", &pool_, &symbols_).ok());
  // X2 without X1: variable 1 never occurs.
  EXPECT_FALSE(Pattern::Parse("X2", &pool_, &symbols_).ok());
}

TEST_F(RsTest, InstantiateConcatenatesPerPattern) {
  Pattern p = Parse("X1abX2X1");
  std::vector<SeqId> values = {Seq("x"), Seq("yy")};
  auto out = p.Instantiate(values, &pool_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(Render(out.value()), "xabyyx");
}

TEST_F(RsTest, InstantiateChecksArity) {
  Pattern p = Parse("X1X2");
  std::vector<SeqId> one = {Seq("x")};
  EXPECT_FALSE(p.Instantiate(one, &pool_).ok());
}

TEST_F(RsTest, MatchEnumeratesSplits) {
  // X1X2 against "abc": 4 split points.
  Pattern p = Parse("X1X2");
  size_t count = p.Match(pool_.View(Seq("abc")), &pool_,
                         [](std::span<const SeqId>) {});
  EXPECT_EQ(count, 4u);
}

TEST_F(RsTest, MatchBindsLiterals) {
  // X1bX2 against "abcb": b at positions 2 and 4.
  Pattern p = Parse("X1bX2");
  std::set<std::pair<std::string, std::string>> bindings;
  p.Match(pool_.View(Seq("abcb")), &pool_,
          [&](std::span<const SeqId> binding) {
            bindings.insert({Render(binding[0]), Render(binding[1])});
          });
  EXPECT_EQ(bindings,
            (std::set<std::pair<std::string, std::string>>{{"a", "cb"},
                                                           {"abc", ""}}));
}

TEST_F(RsTest, RepeatedVariableMatchesSquares) {
  // X1X1 matches exactly the squares ww (compare rep1, Example 1.5 with
  // n = 2).
  Pattern p = Parse("X1X1");
  EXPECT_TRUE(p.Matches(pool_.View(Seq("abab")), &pool_));
  EXPECT_TRUE(p.Matches(pool_.View(Seq("")), &pool_));
  EXPECT_FALSE(p.Matches(pool_.View(Seq("aba")), &pool_));
  EXPECT_FALSE(p.Matches(pool_.View(Seq("abba")), &pool_));
}

TEST_F(RsTest, MatchCountOnUniformInput) {
  // X1X2 on a^n has n+1 splits; all bindings are distinct because the
  // split *is* the binding.
  Pattern p = Parse("X1X2");
  for (size_t n : {0u, 1u, 5u, 9u}) {
    size_t count = p.Match(pool_.View(Seq(std::string(n, 'a'))), &pool_,
                           [](std::span<const SeqId>) {});
    EXPECT_EQ(count, n + 1) << "n=" << n;
  }
}

TEST_F(RsTest, ExtractSuffixes) {
  Table r;
  r.arity = 1;
  r.rows = {{Seq("abc")}};
  TableEnv env = {{"r", r}};
  // Suffixes: match X1X2 and extract X2 (Example 1.1's query in the
  // baseline formalism).
  auto expr = Extract(Base("r"), 0, Parse("X1X2"), 1);
  auto out = expr->Eval(env, &pool_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(Rows(*out),
            (std::vector<std::vector<std::string>>{{"abc", ""},
                                                   {"abc", "abc"},
                                                   {"abc", "bc"},
                                                   {"abc", "c"}}));
}

TEST_F(RsTest, SelectByPattern) {
  Table r;
  r.arity = 1;
  r.rows = {{Seq("ab")}, {Seq("ba")}, {Seq("aab")}, {Seq("b")}};
  TableEnv env = {{"r", r}};
  // Sequences starting with 'a': pattern aX1.
  auto expr = Select(Base("r"), 0, Parse("aX1"));
  auto out = expr->Eval(env, &pool_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(Rows(*out),
            (std::vector<std::vector<std::string>>{{"aab"}, {"ab"}}));
}

TEST_F(RsTest, MergeAppendsColumns) {
  Table r;
  r.arity = 2;
  r.rows = {{Seq("ab"), Seq("cd")}};
  TableEnv env = {{"r", r}};
  auto expr = Merge(Base("r"), Parse("X1X2"), {0, 1});
  auto out = expr->Eval(env, &pool_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(Rows(*out),
            (std::vector<std::vector<std::string>>{{"ab", "cd", "abcd"}}));
  EXPECT_EQ(expr->MergeCount(), 1u);
}

TEST_F(RsTest, UnionProductProject) {
  Table r, s;
  r.arity = 1;
  r.rows = {{Seq("a")}, {Seq("b")}};
  s.arity = 1;
  s.rows = {{Seq("b")}, {Seq("c")}};
  TableEnv env = {{"r", r}, {"s", s}};

  auto u = Union(Base("r"), Base("s"))->Eval(env, &pool_);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->rows.size(), 3u);  // set semantics

  auto p = Product(Base("r"), Base("s"))->Eval(env, &pool_);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->arity, 2u);
  EXPECT_EQ(p->rows.size(), 4u);

  auto proj = Project(Product(Base("r"), Base("s")), {1})->Eval(env,
                                                                &pool_);
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(Rows(*proj),
            (std::vector<std::vector<std::string>>{{"b"}, {"c"}}));
}

TEST_F(RsTest, SelectEqFiltersPairs) {
  Table r;
  r.arity = 2;
  r.rows = {{Seq("a"), Seq("a")}, {Seq("a"), Seq("b")}};
  TableEnv env = {{"r", r}};
  auto out = SelectEq(Base("r"), 0, 1)->Eval(env, &pool_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(Rows(*out),
            (std::vector<std::vector<std::string>>{{"a", "a"}}));
}

TEST_F(RsTest, ErrorsPropagate) {
  TableEnv env;
  auto missing = Base("nope")->Eval(env, &pool_);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  Table r;
  r.arity = 1;
  r.rows = {{Seq("a")}};
  env["r"] = r;
  EXPECT_FALSE(Project(Base("r"), {3})->Eval(env, &pool_).ok());
  EXPECT_FALSE(Select(Base("r"), 2, Parse("X1"))->Eval(env, &pool_).ok());
  EXPECT_FALSE(
      Merge(Base("r"), Parse("X1X2"), {0})->Eval(env, &pool_).ok());
  EXPECT_FALSE(Union(Base("r"), Product(Base("r"), Base("r")))
                   ->Eval(env, &pool_)
                   .ok());
}

/// Cross-check: on suffix extraction the baseline and Sequence Datalog
/// compute the same answers (the paper's point is that SD strictly
/// extends what the safe baseline can do, not that they disagree where
/// both apply).
class RsVsDatalog : public RsTest,
                    public ::testing::WithParamInterface<const char*> {};

TEST_P(RsVsDatalog, SuffixQueryAgrees) {
  const char* input = GetParam();

  // Baseline answer.
  Table r;
  r.arity = 1;
  r.rows = {{Seq(input)}};
  TableEnv env = {{"r", r}};
  auto baseline =
      Project(Extract(Base("r"), 0, Parse("X1X2"), 1), {1})->Eval(env,
                                                                  &pool_);
  ASSERT_TRUE(baseline.ok());
  std::set<std::string> rs_answers;
  for (const auto& row : baseline->rows) {
    rs_answers.insert(Render(row[0]));
  }

  // Sequence Datalog answer (Example 1.1).
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("suffix(X[N:end]) :- r(X).").ok());
  ASSERT_TRUE(engine.AddFact("r", {input}).ok());
  ASSERT_TRUE(engine.Evaluate().status.ok());
  auto rows = engine.Query("suffix");
  ASSERT_TRUE(rows.ok());
  std::set<std::string> sd_answers;
  for (const RenderedRow& row : rows.value()) sd_answers.insert(row[0]);

  EXPECT_EQ(rs_answers, sd_answers) << input;
}

INSTANTIATE_TEST_SUITE_P(Inputs, RsVsDatalog,
                         ::testing::Values("", "a", "ab", "abc", "aaaa",
                                           "abcabc"));

/// Cross-system property: the pattern X1X1 (squares ww) agrees with the
/// Sequence Datalog characterisation via index terms, on every sequence
/// of a random corpus. Exercises repeated-variable matching against the
/// engine's equality-of-indexed-terms path.
class SquaresAgree : public RsTest,
                     public ::testing::WithParamInterface<unsigned> {};

TEST_P(SquaresAgree, PatternAndDatalogClassifyIdentically) {
  std::mt19937 rng(GetParam());
  Engine engine;
  ASSERT_TRUE(
      engine.LoadProgram("sq(X) :- r(X), X[1:N] = X[N+1:end].").ok());
  std::set<std::string> corpus;
  for (int i = 0; i < 12; ++i) {
    size_t len = rng() % 7;
    std::string s;
    for (size_t j = 0; j < len; ++j) s += (rng() % 2) ? 'a' : 'b';
    corpus.insert(s);
  }
  corpus.insert("abab");  // guarantee at least one square
  for (const std::string& s : corpus) {
    ASSERT_TRUE(engine.AddFact("r", {s}).ok());
  }
  ASSERT_TRUE(engine.Evaluate().status.ok());
  auto rows = engine.Query("sq");
  ASSERT_TRUE(rows.ok());
  std::set<std::string> sd_squares;
  for (const RenderedRow& row : rows.value()) sd_squares.insert(row[0]);

  Pattern ww = Parse("X1X1");
  for (const std::string& s : corpus) {
    bool rs_square = ww.Matches(pool_.View(Seq(s)), &pool_);
    EXPECT_EQ(rs_square, sd_squares.count(s) > 0) << "'" << s << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SquaresAgree,
                         ::testing::Values(101u, 202u, 303u, 404u));

/// The structural limitation the paper ascribes to the baseline: an
/// expression performs MergeCount() concatenations per row regardless of
/// the data, so the longest output sequence is bounded by (sum of input
/// lengths consumed) plus pattern literals — per merge. Quadratic
/// growth like square(x) = x^{|x|} needs data-dependent merge counts.
TEST_F(RsTest, MergeCountIsDataIndependent) {
  auto expr = Merge(Merge(Base("r"), Parse("X1X1"), {0}),
                    Parse("X1X2"), {0, 1});
  EXPECT_EQ(expr->MergeCount(), 2u);

  // Output length after k merges of a length-n input is at most
  // (k+1) * n + literals; with n = 4: double = 8, then +4 = 12.
  Table r;
  r.arity = 1;
  r.rows = {{Seq("abcd")}};
  TableEnv env = {{"r", r}};
  auto out = expr->Eval(env, &pool_);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->rows.size(), 1u);
  EXPECT_EQ(pool_.Length(out->rows[0].back()), 12u);
}

}  // namespace
}  // namespace rs
}  // namespace seqlog
