// Unit tests for the lexer and parser.
#include <gtest/gtest.h>

#include <random>

#include "parser/lexer.h"
#include "parser/parser.h"

namespace seqlog {
namespace parser {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  Result<ast::Program> Parse(std::string_view text) {
    return ParseProgram(text, &symbols_, &pool_);
  }
  SymbolTable symbols_;
  SequencePool pool_;
};

TEST_F(ParserTest, LexerTokenises) {
  auto tokens = Tokenize("p(X[1:N]) :- q(X), X != eps. % comment");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> kinds;
  for (const Token& t : tokens.value()) kinds.push_back(t.type);
  EXPECT_EQ(kinds.front(), TokenType::kIdent);
  EXPECT_EQ(kinds.back(), TokenType::kEof);
  // The comment is skipped entirely.
  EXPECT_EQ(std::count(kinds.begin(), kinds.end(), TokenType::kNeq), 1);
  EXPECT_EQ(std::count(kinds.begin(), kinds.end(), TokenType::kEpsKw), 1);
}

TEST_F(ParserTest, LexerTracksPositions) {
  auto tokens = Tokenize("p.\n  q.");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].line, 1);
  EXPECT_EQ(tokens.value()[2].line, 2);
  EXPECT_EQ(tokens.value()[2].column, 3);
}

TEST_F(ParserTest, LexerStampsStartColumnOfMultiCharTokens) {
  // Located diagnostics (analysis/lint.h) render these columns, so every
  // multi-character token must carry its *start* column, not one past.
  auto tokens = Tokenize("abc 12 ++ :- \"st\" 'q' $12 Xy");
  ASSERT_TRUE(tokens.ok());
  std::vector<int> columns;
  for (const Token& t : tokens.value()) columns.push_back(t.column);
  EXPECT_EQ(columns,
            (std::vector<int>{1, 5, 8, 11, 14, 19, 23, 27, 29}));
}

TEST_F(ParserTest, LexerErrorsPointAtTheOffendingTokenStart) {
  // The opening quote of the unterminated constant, not past it...
  Result<std::vector<Token>> q = Tokenize("p('ab");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("1:3"), std::string::npos)
      << q.status().ToString();
  // ...and the '$' of a malformed parameter, even mid-line.
  Result<std::vector<Token>> d = Tokenize("abcdef $x");
  ASSERT_FALSE(d.ok());
  EXPECT_NE(d.status().message().find("1:8"), std::string::npos)
      << d.status().ToString();
  // A stray character right after a multi-char token: the column must
  // account for the token's full width.
  Result<std::vector<Token>> s = Tokenize("\"xy\"&");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.status().message().find("1:5"), std::string::npos)
      << s.status().ToString();
}

TEST_F(ParserTest, LexerRejectsUnterminatedString) {
  EXPECT_FALSE(Tokenize("p(\"abc).").ok());
  EXPECT_FALSE(Tokenize("p('q0).").ok());
}

TEST_F(ParserTest, LexerRejectsStrayCharacters) {
  Result<std::vector<Token>> r = Tokenize("p(X) ;");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("1:6"), std::string::npos)
      << r.status().ToString();
}

TEST_F(ParserTest, LexerTokenisesParams) {
  auto tokens = Tokenize("?- p($1, $12).");
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<std::string> params;
  for (const Token& t : tokens.value()) {
    if (t.type == TokenType::kParam) params.push_back(t.text);
  }
  EXPECT_EQ(params, (std::vector<std::string>{"1", "12"}));
}

TEST_F(ParserTest, LexerRejectsMalformedParams) {
  EXPECT_FALSE(Tokenize("?- p($).").ok());    // no digits
  EXPECT_FALSE(Tokenize("?- p($0).").ok());   // numbered from 1
  EXPECT_FALSE(Tokenize("?- p($01).").ok());  // leading zero
  EXPECT_FALSE(Tokenize("?- p($100).").ok()); // too large
}

TEST_F(ParserTest, GoalAcceptsParams) {
  auto goal = ParseGoal("?- p($1, X, $2).", &symbols_, &pool_);
  ASSERT_TRUE(goal.ok()) << goal.status().ToString();
  ASSERT_EQ(goal->args.size(), 3u);
  ASSERT_EQ(goal->args[0]->kind, ast::SeqTerm::Kind::kVariable);
  EXPECT_EQ(goal->args[0]->var, "$1");
  EXPECT_TRUE(IsParamVariable(goal->args[0]->var));
  EXPECT_EQ(ParamIndex(goal->args[0]->var), 1u);
  EXPECT_FALSE(IsParamVariable(goal->args[1]->var));
  EXPECT_EQ(ParamIndex(goal->args[2]->var), 2u);
}

TEST_F(ParserTest, ProgramRejectsParams) {
  auto p = Parse("p($1) :- r($1).");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("only allowed in goals"),
            std::string::npos)
      << p.status().ToString();
}

TEST_F(ParserTest, FactsAndRules) {
  auto p = Parse("r(abc) :- true.\np(X) :- r(X).");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->clauses.size(), 2u);
  EXPECT_TRUE(p->clauses[0].body.empty());
  EXPECT_EQ(p->clauses[1].body.size(), 1u);
}

TEST_F(ParserTest, ConstantFormsAllIntern) {
  // Bare identifier, quoted string and digits all make char sequences.
  auto p = Parse("p(abc, \"abc\", 101) :- true.");
  ASSERT_TRUE(p.ok());
  const auto& args = p->clauses[0].head.args;
  EXPECT_EQ(args[0]->constant, args[1]->constant);
  EXPECT_EQ(pool_.Length(args[2]->constant), 3u);
}

TEST_F(ParserTest, QuotedSymbolIsOneSymbol) {
  auto p = Parse("p('q0') :- true.");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(pool_.Length(p->clauses[0].head.args[0]->constant), 1u);
}

TEST_F(ParserTest, EpsIsTheEmptySequence) {
  auto p = Parse("p(eps) :- true.");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->clauses[0].head.args[0]->constant, kEmptySeq);
}

TEST_F(ParserTest, IndexedTermForms) {
  auto p = Parse("p(X[1], X[N], X[N+1:end], X[end-1:end]) :- q(X).");
  ASSERT_TRUE(p.ok());
  const auto& args = p->clauses[0].head.args;
  for (const auto& a : args) {
    EXPECT_EQ(a->kind, ast::SeqTerm::Kind::kIndexed);
  }
  // X[1] is shorthand for X[1:1].
  EXPECT_EQ(args[0]->lo.get(), args[0]->hi.get());
}

TEST_F(ParserTest, IndexArithmeticNesting) {
  auto p = Parse("p(X[N+1-2:end-5+M]) :- q(X).");
  ASSERT_TRUE(p.ok());
}

TEST_F(ParserTest, ConcatIsLeftAssociative) {
  auto p = Parse("p(X ++ Y ++ Z) :- q(X), q(Y), q(Z).");
  ASSERT_TRUE(p.ok());
  const auto& head = p->clauses[0].head.args[0];
  EXPECT_EQ(head->kind, ast::SeqTerm::Kind::kConcat);
  EXPECT_EQ(head->left->kind, ast::SeqTerm::Kind::kConcat);
  EXPECT_EQ(head->right->kind, ast::SeqTerm::Kind::kVariable);
}

TEST_F(ParserTest, TransducerTerms) {
  auto p = Parse("p(@t(X, Y ++ Z)) :- q(X), q(Y), q(Z).");
  ASSERT_TRUE(p.ok());
  const auto& head = p->clauses[0].head.args[0];
  EXPECT_EQ(head->kind, ast::SeqTerm::Kind::kTransducer);
  EXPECT_EQ(head->transducer, "t");
  EXPECT_EQ(head->args.size(), 2u);
}

TEST_F(ParserTest, EqualityLiterals) {
  auto p = Parse("p(X) :- q(X), X[1] = a, X != eps.");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->clauses[0].body[1].kind, ast::Atom::Kind::kEq);
  EXPECT_EQ(p->clauses[0].body[2].kind, ast::Atom::Kind::kNeq);
}

TEST_F(ParserTest, ZeroArityPredicates) {
  auto p = Parse("flag :- r(X).\nq(a) :- flag.");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->clauses[0].head.args.empty());
}

TEST_F(ParserTest, MissingPeriodIsAnError) {
  Result<ast::Program> r = Parse("p(X) :- q(X)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("expected"), std::string::npos);
}

TEST_F(ParserTest, EqualityInHeadIsRejected) {
  EXPECT_FALSE(Parse("X = Y :- q(X), q(Y).").ok());
}

TEST_F(ParserTest, NestedIndexingIsRejected) {
  // S[1:N][M:end] is not a term (Section 3.1).
  EXPECT_FALSE(Parse("p(X[1:N][2:end]) :- q(X).").ok());
}

TEST_F(ParserTest, HugeIntegerLiteralRejected) {
  EXPECT_FALSE(Parse("p(X[12345678901234567890]) :- q(X).").ok());
}

TEST_F(ParserTest, ParseClauseRequiresExactlyOne) {
  EXPECT_FALSE(ParseClause("p(a). q(b).", &symbols_, &pool_).ok());
  EXPECT_TRUE(ParseClause("p(a).", &symbols_, &pool_).ok());
}

TEST_F(ParserTest, ErrorsCarryPositions) {
  Result<ast::Program> r = Parse("p(X) :-\n  q(X,).");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("2:"), std::string::npos)
      << r.status().ToString();
}

/// Fuzz smoke test: random byte soup over the token alphabet must never
/// crash or hang the lexer/parser — every input returns ok or a Status.
class ParserFuzz : public ParserTest,
                   public ::testing::WithParamInterface<unsigned> {};

TEST_P(ParserFuzz, RandomInputNeverCrashes) {
  constexpr char kChars[] =
      "abcXYZN019 \t\n()[]:,.+-=!<@#%$u_eps:-++end";
  std::mt19937 rng(GetParam());
  for (int round = 0; round < 300; ++round) {
    size_t len = rng() % 60;
    std::string text;
    text.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      text += kChars[rng() % (sizeof(kChars) - 1)];
    }
    Result<ast::Program> r = Parse(text);
    if (r.ok()) continue;  // some soup is a valid program, fine
    EXPECT_FALSE(r.status().message().empty());
  }
}

/// Mutation fuzz: start from valid programs and flip characters; the
/// parser must reject or accept without crashing, and accepted mutants
/// must round-trip through the pretty printer.
TEST_P(ParserFuzz, MutatedProgramsParseOrFailCleanly) {
  constexpr const char* kSeeds[] = {
      "suffix(X[N:end]) :- r(X).",
      "answer(X ++ Y) :- r(X), r(Y).",
      "rep1(X, X[1:N]) :- rep1(X[N+1:end], X[1:N]).",
      "p(@square(X)) <= r(X).",
  };
  std::mt19937 rng(GetParam() + 7);
  for (const char* seed : kSeeds) {
    std::string base = seed;
    for (int round = 0; round < 100; ++round) {
      std::string text = base;
      size_t flips = 1 + rng() % 3;
      for (size_t f = 0; f < flips; ++f) {
        text[rng() % text.size()] =
            static_cast<char>(32 + rng() % 95);
      }
      Result<ast::Program> r = Parse(text);
      if (!r.ok()) continue;
      std::string printed = ast::ToString(r.value(), pool_, symbols_);
      EXPECT_TRUE(ParseProgram(printed, &symbols_, &pool_).ok())
          << "accepted mutant failed to round-trip: " << printed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace parser
}  // namespace seqlog
