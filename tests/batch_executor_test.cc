// The batch execution tier (serve/batch_executor.h, query::ExecuteBatch).
//
// The load-bearing property is ANSWER PARITY: a batch of N bindings
// answers bit-identically to N independent PreparedQuery executions —
// same rows, same order, same per-item status — while paying for ONE
// semi-naive run instead of N (stats.evaluations proves the
// amortisation). Parity is checked across the paper workloads (suffix
// membership, the genome pipeline, the text index) at 1, 2 and 8
// evaluation threads, plus the edge cases: empty batches, duplicate
// bindings (seed relations are sets), EDB goals, per-item failures, and
// cross-query fusion.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/programs.h"
#include "serve/batch_executor.h"
#include "transducer/genome.h"

namespace seqlog {
namespace {

void RegisterGenomeMachines(Engine* engine) {
  auto transcribe =
      transducer::MakeTranscribe("transcribe", engine->symbols());
  ASSERT_TRUE(transcribe.ok()) << transcribe.status().ToString();
  auto translate =
      transducer::MakeTranslate("translate", engine->symbols());
  ASSERT_TRUE(translate.ok()) << translate.status().ToString();
  ASSERT_TRUE(engine->RegisterTransducer(transcribe.value()).ok());
  ASSERT_TRUE(engine->RegisterTransducer(translate.value()).ok());
}

/// Runs one single-query batch over `probes` at `threads` and checks
/// every item against its independent ExecuteWith oracle.
void ExpectParity(Engine* engine, const char* goal,
                  const std::vector<std::string>& probes, size_t threads) {
  SCOPED_TRACE(std::string(goal) + " at " + std::to_string(threads) +
               " thread(s)");
  Result<PreparedQuery> prepared = engine->Prepare(goal);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  Snapshot snapshot = engine->PublishSnapshot();

  serve::BatchExecutor batch(engine, {&*prepared});
  std::vector<serve::BatchExecutor::Item> items;
  for (const std::string& probe : probes) {
    Result<serve::BatchExecutor::Item> item = batch.MakeItem(0, {probe});
    ASSERT_TRUE(item.ok()) << item.status().ToString();
    items.push_back(std::move(item).value());
  }

  query::SolveOptions options;
  options.eval.num_threads = threads;
  serve::BatchResult result = batch.Execute(snapshot, items, options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  ASSERT_EQ(result.results.size(), probes.size());
  EXPECT_EQ(result.stats.items, probes.size());
  // The whole batch rides ONE fixpoint run — the amortisation claim.
  EXPECT_EQ(result.stats.evaluations, 1u);

  for (size_t i = 0; i < items.size(); ++i) {
    SCOPED_TRACE("item " + std::to_string(i) + " probe '" + probes[i] +
                 "'");
    ResultSet oracle =
        prepared->ExecuteWith(snapshot, items[i].params, options);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    EXPECT_TRUE(result.results[i].ok())
        << result.results[i].status().ToString();
    EXPECT_EQ(result.results[i].Materialize(), oracle.Materialize());
  }
}

TEST(BatchExecutor, SuffixParityAcrossThreadCounts) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgtacgt"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ttttgggg"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"gattaca"}).ok());
  // Hits, misses, the empty suffix, full-sequence suffixes.
  std::vector<std::string> probes = {"acgt",    "gggg", "t", "zz",
                                     "",        "gattaca", "attaca",
                                     "acgtacgt", "cgt",  "x"};
  for (size_t threads : {1u, 2u, 8u}) {
    ExpectParity(&engine, "?- suffix($1).", probes, threads);
  }
}

TEST(BatchExecutor, GenomeParityAcrossThreadCounts) {
  Engine engine;
  RegisterGenomeMachines(&engine);
  ASSERT_TRUE(engine.LoadProgram(programs::kGenomePipeline).ok());
  std::vector<std::string> dna = {"acgtac", "ttgaca", "cccggg",
                                  "gattac", "aaaaaa"};
  for (const std::string& d : dna) {
    ASSERT_TRUE(engine.AddFact("dnaseq", {d}).ok());
  }
  std::vector<std::string> probes = dna;
  probes.push_back("acacac");  // miss: not in the database
  for (size_t threads : {1u, 2u, 8u}) {
    ExpectParity(&engine, "?- rnaseq($1, X).", probes, threads);
  }
}

TEST(BatchExecutor, TextIndexParityAcrossThreadCounts) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kTextIndex).ok());
  for (const char* doc : {"abababab", "babab", "aabbaabb"}) {
    ASSERT_TRUE(engine.AddFact("doc", {doc}).ok());
  }
  std::vector<std::string> probes = {"abab", "baba", "aabb", "bbbb",
                                     "ab"};
  for (size_t threads : {1u, 2u, 8u}) {
    ExpectParity(&engine, "?- hit($1, D).", probes, threads);
  }
}

TEST(BatchExecutor, EmptyBatchIsOkAndFree) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgt"}).ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- suffix($1).");
  ASSERT_TRUE(prepared.ok());
  Snapshot snapshot = engine.PublishSnapshot();

  serve::BatchExecutor batch(&engine, {&*prepared});
  serve::BatchResult result = batch.Execute(snapshot, {});
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.results.empty());
  EXPECT_EQ(result.stats.evaluations, 0u);
}

TEST(BatchExecutor, DuplicateBindingsEachGetFullAnswers) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgtacgt"}).ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- suffix($1).");
  ASSERT_TRUE(prepared.ok());
  Snapshot snapshot = engine.PublishSnapshot();

  serve::BatchExecutor batch(&engine, {&*prepared});
  // The same probe five times: seed relations are sets, so the run
  // sees one seed — but every item still answers in full.
  std::vector<serve::BatchExecutor::Item> items;
  for (int i = 0; i < 5; ++i) {
    items.push_back(batch.MakeItem(0, {"cgt"}).value());
  }
  serve::BatchResult result = batch.Execute(snapshot, items);
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.results.size(), 5u);
  EXPECT_EQ(result.stats.evaluations, 1u);
  ResultSet oracle = prepared->ExecuteWith(snapshot, items[0].params);
  for (const ResultSet& rs : result.results) {
    EXPECT_EQ(rs.Materialize(), oracle.Materialize());
  }
}

TEST(BatchExecutor, EdbGoalsAnswerByDirectScanWithZeroRuns) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgt"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ttgg"}).ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- r($1).");
  ASSERT_TRUE(prepared.ok());
  Snapshot snapshot = engine.PublishSnapshot();

  serve::BatchExecutor batch(&engine, {&*prepared});
  std::vector<serve::BatchExecutor::Item> items;
  for (const char* probe : {"acgt", "ttgg", "gg"}) {
    items.push_back(batch.MakeItem(0, {probe}).value());
  }
  serve::BatchResult result = batch.Execute(snapshot, items);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.stats.evaluations, 0u);  // no fixpoint at all
  EXPECT_EQ(result.results[0].size(), 1u);
  EXPECT_EQ(result.results[1].size(), 1u);
  EXPECT_EQ(result.results[2].size(), 0u);
}

TEST(BatchExecutor, PerItemFailuresDoNotFailTheBatch) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgt"}).ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- suffix($1).");
  ASSERT_TRUE(prepared.ok());
  Snapshot snapshot = engine.PublishSnapshot();

  serve::BatchExecutor batch(&engine, {&*prepared});
  std::vector<serve::BatchExecutor::Item> items;
  items.push_back(batch.MakeItem(0, {"cgt"}).value());
  // An unbound parameter: this item fails alone.
  serve::BatchExecutor::Item unbound;
  unbound.query = 0;
  unbound.params = {std::nullopt};
  items.push_back(unbound);
  // An out-of-range query index: also an individual failure.
  serve::BatchExecutor::Item bad_query;
  bad_query.query = 7;
  items.push_back(bad_query);

  serve::BatchResult result = batch.Execute(snapshot, items);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  ASSERT_EQ(result.results.size(), 3u);
  EXPECT_TRUE(result.results[0].ok());
  EXPECT_EQ(result.results[0].size(), 1u);
  EXPECT_EQ(result.results[1].status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(result.results[2].status().code(), StatusCode::kOutOfRange);
}

TEST(BatchExecutor, MakeItemValidatesIndexAndArity) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- suffix($1).");
  ASSERT_TRUE(prepared.ok());
  serve::BatchExecutor batch(&engine, {&*prepared});
  EXPECT_EQ(batch.MakeItem(1, {"x"}).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(batch.MakeItem(0, {"x", "y"}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(batch.MakeItem(0, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BatchExecutor, InvalidSnapshotIsRefused) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- suffix($1).");
  ASSERT_TRUE(prepared.ok());
  serve::BatchExecutor batch(&engine, {&*prepared});
  serve::BatchResult result = batch.Execute(Snapshot(), {});
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
}

/// Two distinct IDB goals over one program: fusion compiles their
/// rewrites into ONE evaluator, a mixed batch rides one run, and every
/// item still matches its solo oracle.
TEST(BatchExecutor, FusesDistinctQueriesIntoOneRun) {
  Engine engine;
  ASSERT_TRUE(engine
                  .LoadProgram(
                      "suffix(X[N:end]) :- r(X).\n"
                      "prefix(X[1:N]) :- r(X).\n")
                  .ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgtac"}).ok());
  ASSERT_TRUE(engine.AddFact("r", {"ttgg"}).ok());
  Result<PreparedQuery> suffix = engine.Prepare("?- suffix($1).");
  ASSERT_TRUE(suffix.ok()) << suffix.status().ToString();
  Result<PreparedQuery> prefix = engine.Prepare("?- prefix($1).");
  ASSERT_TRUE(prefix.ok()) << prefix.status().ToString();
  Snapshot snapshot = engine.PublishSnapshot();

  serve::BatchExecutor batch(&engine, {&*suffix, &*prefix});
  EXPECT_TRUE(batch.fused()) << batch.fusion_status().ToString();

  std::vector<serve::BatchExecutor::Item> items;
  items.push_back(batch.MakeItem(0, {"tac"}).value());   // suffix hit
  items.push_back(batch.MakeItem(1, {"acg"}).value());   // prefix hit
  items.push_back(batch.MakeItem(0, {"acg"}).value());   // suffix miss
  items.push_back(batch.MakeItem(1, {"ttg"}).value());   // prefix hit
  serve::BatchResult result = batch.Execute(snapshot, items);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.stats.evaluations, 1u);  // ONE run for BOTH queries
  EXPECT_TRUE(result.stats.fused);

  const PreparedQuery* queries[] = {&*suffix, &*prefix};
  for (size_t i = 0; i < items.size(); ++i) {
    SCOPED_TRACE("item " + std::to_string(i));
    ResultSet oracle = queries[items[i].query]->ExecuteWith(
        snapshot, items[i].params);
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(result.results[i].Materialize(), oracle.Materialize());
  }
}

TEST(BatchExecutor, FusionOffFallsBackToGroupwiseRunsWithParity) {
  Engine engine;
  ASSERT_TRUE(engine
                  .LoadProgram(
                      "suffix(X[N:end]) :- r(X).\n"
                      "prefix(X[1:N]) :- r(X).\n")
                  .ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgtac"}).ok());
  Result<PreparedQuery> suffix = engine.Prepare("?- suffix($1).");
  ASSERT_TRUE(suffix.ok());
  Result<PreparedQuery> prefix = engine.Prepare("?- prefix($1).");
  ASSERT_TRUE(prefix.ok());
  Snapshot snapshot = engine.PublishSnapshot();

  serve::BatchOptions no_fuse;
  no_fuse.fuse = false;
  serve::BatchExecutor batch(&engine, {&*suffix, &*prefix}, no_fuse);
  EXPECT_FALSE(batch.fused());

  std::vector<serve::BatchExecutor::Item> items;
  items.push_back(batch.MakeItem(0, {"tac"}).value());
  items.push_back(batch.MakeItem(1, {"acg"}).value());
  items.push_back(batch.MakeItem(0, {"c"}).value());
  serve::BatchResult result = batch.Execute(snapshot, items);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.stats.evaluations, 2u);  // one run per distinct goal
  const PreparedQuery* queries[] = {&*suffix, &*prefix};
  for (size_t i = 0; i < items.size(); ++i) {
    ResultSet oracle = queries[items[i].query]->ExecuteWith(
        snapshot, items[i].params);
    EXPECT_EQ(result.results[i].Materialize(), oracle.Materialize());
  }
}

/// Executions through the batch path never re-parse or re-rewrite: the
/// prepared counters stay at their Prepare-time values.
TEST(BatchExecutor, BatchPathPerformsZeroReparsing) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(programs::kSuffixes).ok());
  ASSERT_TRUE(engine.AddFact("r", {"acgt"}).ok());
  Result<PreparedQuery> prepared = engine.Prepare("?- suffix($1).");
  ASSERT_TRUE(prepared.ok());
  Snapshot snapshot = engine.PublishSnapshot();
  PreparedQueryStats before = prepared->stats();

  serve::BatchExecutor batch(&engine, {&*prepared});
  std::vector<serve::BatchExecutor::Item> items;
  for (const char* probe : {"t", "gt", "cgt"}) {
    items.push_back(batch.MakeItem(0, {probe}).value());
  }
  serve::BatchResult result = batch.Execute(snapshot, items);
  ASSERT_TRUE(result.status.ok());

  PreparedQueryStats after = prepared->stats();
  EXPECT_EQ(after.goal_parses, before.goal_parses);
  EXPECT_EQ(after.magic_rewrites, before.magic_rewrites);
  EXPECT_EQ(after.plan_compilations, before.plan_compilations);
}

}  // namespace
}  // namespace seqlog
