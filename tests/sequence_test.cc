// Unit and property tests for the sequence layer: symbol table, pool and
// extended active domain (Definitions 2-3, Lemma 1, the subsequence-count
// bound of Section 2.1).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "sequence/domain.h"
#include "sequence/sequence_pool.h"
#include "sequence/symbol_table.h"

namespace seqlog {
namespace {

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable t;
  Symbol a = t.Intern("a");
  EXPECT_EQ(t.Intern("a"), a);
  EXPECT_EQ(t.Name(a), "a");
  EXPECT_EQ(t.size(), 1u);
}

TEST(SymbolTableTest, MultiCharacterNames) {
  SymbolTable t;
  Symbol q0 = t.Intern("q0");
  Symbol q1 = t.Intern("q1");
  EXPECT_NE(q0, q1);
  EXPECT_EQ(t.Name(q0), "q0");
}

TEST(SymbolTableTest, FindMissingReturnsMarkerSentinel) {
  SymbolTable t;
  EXPECT_EQ(t.Find("nope"), kEndMarker);
  t.Intern("yes");
  EXPECT_NE(t.Find("yes"), kEndMarker);
}

TEST(SequencePoolTest, EmptySequenceIsIdZero) {
  SequencePool pool;
  EXPECT_EQ(pool.Intern({}), kEmptySeq);
  EXPECT_EQ(pool.Length(kEmptySeq), 0u);
}

TEST(SequencePoolTest, InternDeduplicates) {
  SymbolTable t;
  SequencePool pool;
  SeqId a = pool.FromChars("acgt", &t);
  SeqId b = pool.FromChars("acgt", &t);
  SeqId c = pool.FromChars("acga", &t);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(pool.Length(a), 4u);
}

TEST(SequencePoolTest, ConcatMatchesContent) {
  SymbolTable t;
  SequencePool pool;
  SeqId ab = pool.FromChars("ab", &t);
  SeqId cd = pool.FromChars("cd", &t);
  SeqId abcd = pool.Concat(ab, cd);
  EXPECT_EQ(abcd, pool.FromChars("abcd", &t));
  EXPECT_EQ(pool.Concat(kEmptySeq, ab), ab);
  EXPECT_EQ(pool.Concat(ab, kEmptySeq), ab);
}

TEST(SequencePoolTest, SubsequenceSemantics) {
  // The Section 3.2 table: uvwxy[3:5]=wxy, [3:3]=w, [3:2]=eps.
  SymbolTable t;
  SequencePool pool;
  SeqId s = pool.FromChars("uvwxy", &t);
  EXPECT_EQ(pool.Subsequence(s, 3, 5), pool.FromChars("wxy", &t));
  EXPECT_EQ(pool.Subsequence(s, 3, 4), pool.FromChars("wx", &t));
  EXPECT_EQ(pool.Subsequence(s, 3, 3), pool.FromChars("w", &t));
  EXPECT_EQ(pool.Subsequence(s, 3, 2), kEmptySeq);
  EXPECT_EQ(pool.Subsequence(s, 1, 5), s);
}

TEST(SequencePoolTest, RenderMixedSymbolWidths) {
  SymbolTable t;
  SequencePool pool;
  std::vector<Symbol> syms = {t.Intern("q0"), t.Intern("a"), t.Intern("b")};
  SeqId s = pool.Intern(syms);
  EXPECT_EQ(pool.Render(s, t), "<q0>ab");
  EXPECT_EQ(pool.Render(kEmptySeq, t), "");
}

TEST(ExtendedDomainTest, StartsWithEpsilonOnly) {
  SequencePool pool;
  ExtendedDomain d(&pool);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_TRUE(d.Contains(kEmptySeq));
  EXPECT_EQ(d.MaxInt(), 1);  // lmax = 0
}

TEST(ExtendedDomainTest, AddRootInsertsAllSubsequences) {
  SymbolTable t;
  SequencePool pool;
  ExtendedDomain d(&pool);
  SeqId abc = pool.FromChars("abc", &t);
  ASSERT_TRUE(d.AddRoot(abc).ok());
  // Section 2.1: eps, a, b, c, ab, bc, abc.
  EXPECT_EQ(d.size(), 7u);
  for (const char* sub : {"a", "b", "c", "ab", "bc", "abc"}) {
    EXPECT_TRUE(d.Contains(pool.FromChars(sub, &t))) << sub;
  }
  EXPECT_FALSE(d.Contains(pool.FromChars("ac", &t)));
  EXPECT_EQ(d.MaxInt(), 4);
}

TEST(ExtendedDomainTest, SubsequenceCountBound) {
  // At most k(k+1)/2 + 1 distinct contiguous subsequences (attained by
  // sequences with all-distinct symbols).
  SymbolTable t;
  SequencePool pool;
  for (size_t k = 1; k <= 12; ++k) {
    ExtendedDomain d(&pool);
    std::vector<Symbol> syms;
    for (size_t i = 0; i < k; ++i) {
      syms.push_back(t.Intern(std::string("s") + std::to_string(i)));
    }
    ASSERT_TRUE(d.AddRoot(pool.Intern(syms)).ok());
    EXPECT_EQ(d.size(), k * (k + 1) / 2 + 1) << "k=" << k;
  }
}

TEST(ExtendedDomainTest, RepeatedSymbolsGiveFewerSubsequences) {
  SymbolTable t;
  SequencePool pool;
  ExtendedDomain d(&pool);
  ASSERT_TRUE(d.AddRoot(pool.FromChars("aaaa", &t)).ok());
  // eps, a, aa, aaa, aaaa.
  EXPECT_EQ(d.size(), 5u);
}

TEST(ExtendedDomainTest, UniformFastPathMatchesGenericClosure) {
  // a^n takes the uniform fast path; its closure must be identical to
  // what the generic loop computes for an equivalent mixed sequence
  // restricted to the uniform members: exactly {eps, a, ..., a^n}, all
  // length buckets singleton.
  SymbolTable t;
  SequencePool pool;
  ExtendedDomain d(&pool);
  ASSERT_TRUE(d.AddRoot(pool.FromChars("aaaaaa", &t)).ok());
  EXPECT_EQ(d.size(), 7u);
  for (size_t len = 0; len <= 6; ++len) {
    EXPECT_EQ(d.WithLength(len).size(), 1u) << len;
    EXPECT_TRUE(d.Contains(pool.FromChars(std::string(len, 'a'), &t)));
  }
  EXPECT_EQ(d.MaxInt(), 7);
  // The fast path must still honour the budget.
  ExtendedDomain capped(&pool);
  Status s =
      capped.AddRoot(pool.FromChars(std::string(100, 'a'), &t), 10);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST(ExtendedDomainTest, LengthBucketsPartitionTheDomain) {
  SymbolTable t;
  SequencePool pool;
  ExtendedDomain d(&pool);
  ASSERT_TRUE(d.AddRoot(pool.FromChars("abcab", &t)).ok());
  size_t total = 0;
  for (size_t len = 0; len <= d.lmax(); ++len) {
    for (SeqId id : d.WithLength(len)) {
      EXPECT_EQ(pool.Length(id), len);
      ++total;
    }
  }
  EXPECT_EQ(total, d.size());
  EXPECT_TRUE(d.WithLength(d.lmax() + 5).empty());
}

TEST(ExtendedDomainTest, ReAddingContainedSequenceIsNoop) {
  SymbolTable t;
  SequencePool pool;
  ExtendedDomain d(&pool);
  SeqId abc = pool.FromChars("abc", &t);
  ASSERT_TRUE(d.AddRoot(abc).ok());
  size_t before = d.size();
  ASSERT_TRUE(d.AddRoot(pool.FromChars("ab", &t)).ok());  // a subsequence
  ASSERT_TRUE(d.AddRoot(abc).ok());
  EXPECT_EQ(d.size(), before);
}

TEST(ExtendedDomainTest, MonotoneGrowth) {
  // Lemma 1 flavour: adding roots never removes elements and the
  // insertion order view is stable.
  SymbolTable t;
  SequencePool pool;
  ExtendedDomain d(&pool);
  ASSERT_TRUE(d.AddRoot(pool.FromChars("ab", &t)).ok());
  std::vector<SeqId> snapshot(d.sequences().begin(), d.sequences().end());
  ASSERT_TRUE(d.AddRoot(pool.FromChars("xyz", &t)).ok());
  ASSERT_GE(d.sequences().size(), snapshot.size());
  for (size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(d.sequences()[i], snapshot[i]);
  }
}

TEST(ExtendedDomainTest, LayeredOverlayReusesFrozenBase) {
  SymbolTable t;
  SequencePool pool;
  auto base = std::make_shared<ExtendedDomain>(&pool);
  ASSERT_TRUE(base->AddRoot(pool.FromChars("abc", &t)).ok());
  const size_t base_size = base->size();

  ExtendedDomain overlay(&pool, base);
  EXPECT_EQ(overlay.size(), base_size);  // starts as a view of the base
  EXPECT_TRUE(overlay.Contains(pool.FromChars("ab", &t)));
  // Re-adding a base root must not duplicate anything.
  ASSERT_TRUE(overlay.AddRoot(pool.FromChars("abc", &t)).ok());
  EXPECT_EQ(overlay.size(), base_size);

  // New roots extend only the overlay; the base is untouched.
  ASSERT_TRUE(overlay.AddRoot(pool.FromChars("xy", &t)).ok());
  EXPECT_GT(overlay.size(), base_size);
  EXPECT_EQ(base->size(), base_size);
  EXPECT_TRUE(overlay.Contains(pool.FromChars("x", &t)));
  EXPECT_FALSE(base->Contains(pool.FromChars("x", &t)));

  // Enumeration covers base + overlay exactly once, buckets included.
  std::vector<SeqId> all(overlay.sequences().begin(),
                         overlay.sequences().end());
  std::set<SeqId> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), all.size());
  EXPECT_EQ(all.size(), overlay.size());
  size_t bucketed = 0;
  for (size_t len = 0; len <= overlay.lmax(); ++len) {
    bucketed += overlay.WithLength(len).size();
  }
  EXPECT_EQ(bucketed, overlay.size());
  EXPECT_EQ(overlay.MaxInt(), 4);  // lmax still from the base ("abc")
}

TEST(ExtendedDomainTest, BudgetExceededReportsResourceExhausted) {
  SymbolTable t;
  SequencePool pool;
  ExtendedDomain d(&pool);
  std::string long_seq(64, 'a');
  for (size_t i = 0; i < long_seq.size(); ++i) {
    long_seq[i] = static_cast<char>('a' + (i % 26));
  }
  Status s = d.AddRoot(pool.FromChars(long_seq, &t), /*max_sequences=*/10);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST(ExtendedDomainTest, IntegerRangeTracksLongestSequence) {
  SymbolTable t;
  SequencePool pool;
  ExtendedDomain d(&pool);
  ASSERT_TRUE(d.AddRoot(pool.FromChars("ab", &t)).ok());
  EXPECT_EQ(d.MaxInt(), 3);
  ASSERT_TRUE(d.AddRoot(pool.FromChars("abcde", &t)).ok());
  EXPECT_EQ(d.MaxInt(), 6);
  EXPECT_EQ(d.lmax(), 5u);
}

}  // namespace
}  // namespace seqlog
