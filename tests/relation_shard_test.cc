// Sharded-relation tests: the detached-insert/commit lifecycle, the
// cross-shard concurrent writer/reader stress (TSan coverage in CI,
// like sequence_pool_concurrency_test), and the determinism contract of
// Database::MergeFromAll — serial and pooled merges must produce the
// same scan order and the same callback stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "base/thread_pool.h"
#include "storage/catalog.h"
#include "storage/database.h"
#include "storage/relation.h"

namespace seqlog {
namespace {

TEST(RelationShardTest, DetachedRowsAreInvisibleUntilCommitted) {
  Relation r(2);
  std::optional<RowId> id = r.InsertDetached(std::vector<SeqId>{3, 4});
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(r.size(), 0u);  // not scan-visible yet
  EXPECT_TRUE(r.Contains(std::vector<SeqId>{3, 4}));  // but deduped
  EXPECT_FALSE(r.InsertDetached(std::vector<SeqId>{3, 4}).has_value());
  r.CommitRow(*id);
  EXPECT_EQ(r.size(), 1u);
  TupleView row = r.RowAt(0);
  EXPECT_EQ(row[0], 3u);
  EXPECT_EQ(row[1], 4u);
  EXPECT_EQ(r.PositionOf(*id), 0u);
}

TEST(RelationShardTest, CommitAllDetachedIsShardMajorDeterministic) {
  // Two relations receiving the same detached rows in different orders
  // commit to the same scan order: shards ascending, per-shard
  // insertion order within each — per-shard order is the insert order,
  // which both see identically here per shard.
  std::vector<std::vector<SeqId>> rows;
  for (SeqId v = 0; v < 64; ++v) rows.push_back({v, v + 100});
  Relation a(2);
  Relation b(2);
  for (const auto& row : rows) a.InsertDetached(row);
  for (const auto& row : rows) b.InsertDetached(row);
  EXPECT_EQ(a.CommitAllDetached(), 64u);
  EXPECT_EQ(b.CommitAllDetached(), 64u);
  ASSERT_EQ(a.size(), b.size());
  for (uint32_t pos = 0; pos < a.size(); ++pos) {
    TupleView ra = a.RowAt(pos);
    TupleView rb = b.RowAt(pos);
    EXPECT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin()));
  }
}

TEST(RelationShardTest, ConcurrentWritersLoseNothingAndDuplicateNothing) {
  // Every writer attempts the full row set, so every row is a duplicate
  // for all but one thread and neighbouring values land in different
  // shards — the colliding cross-shard schedule the per-shard lock must
  // survive. Readers take shard snapshots throughout.
  constexpr size_t kWriters = 8;
  constexpr SeqId kRows = 2000;
  Relation r(2);
  std::atomic<size_t> accepted{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (size_t t = 0; t < kWriters; ++t) {
    threads.emplace_back([&r, &accepted, t] {
      // Different starting offset per thread: all rows, rotated, so
      // threads contend on different shards at any instant.
      for (SeqId i = 0; i < kRows; ++i) {
        SeqId v = (i + static_cast<SeqId>(t) * 251) % kRows;
        std::vector<SeqId> row{v, v * 3 + 1};
        if (r.InsertDetachedLocked(row).has_value()) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (size_t t = 0; t < 2; ++t) {
    threads.emplace_back([&r, &done] {
      // Snapshot sizes per shard only grow (append-only under the shard
      // lock); a shrinking size would mean a torn read.
      std::array<size_t, Relation::kNumShards> last{};
      while (!done.load(std::memory_order_acquire)) {
        for (size_t s = 0; s < Relation::ShardCount(); ++s) {
          std::vector<SeqId> snap = r.ShardSnapshotLocked(s);
          EXPECT_EQ(snap.size() % 2, 0u);
          EXPECT_GE(snap.size() / 2, last[s]);
          last[s] = snap.size() / 2;
        }
      }
    });
  }
  for (size_t t = 0; t < kWriters; ++t) threads[t].join();
  done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  // No duplicates: exactly one writer won each row.
  EXPECT_EQ(accepted.load(), kRows);
  EXPECT_EQ(r.CommitAllDetached(), kRows);
  ASSERT_EQ(r.size(), kRows);
  // No losses, no phantoms: the committed scan holds exactly the row
  // set, and a second scan returns the identical sequence (stable
  // order).
  std::set<std::vector<SeqId>> seen;
  std::vector<std::vector<SeqId>> first_scan;
  for (uint32_t pos = 0; pos < r.size(); ++pos) {
    TupleView row = r.RowAt(pos);
    std::vector<SeqId> copy(row.begin(), row.end());
    EXPECT_EQ(copy[1], copy[0] * 3 + 1);
    EXPECT_LT(copy[0], kRows);
    EXPECT_TRUE(seen.insert(copy).second) << "duplicate row in scan";
    first_scan.push_back(std::move(copy));
  }
  EXPECT_EQ(seen.size(), kRows);
  for (uint32_t pos = 0; pos < r.size(); ++pos) {
    TupleView row = r.RowAt(pos);
    EXPECT_TRUE(std::equal(row.begin(), row.end(),
                           first_scan[pos].begin()));
    EXPECT_EQ(r.PositionOf(r.IdAt(pos)), pos);
  }
}

/// Runs MergeFromAll over `sources` into a fresh database, recording
/// the callback stream; returns {stream, scan of every relation}.
struct MergeTrace {
  std::vector<std::tuple<PredId, std::vector<SeqId>, size_t>> on_new;
  std::vector<std::vector<SeqId>> scans;  // per pred, flattened RowAt
};

MergeTrace RunMerge(Catalog* catalog,
                    const std::vector<const Database*>& sources,
                    ThreadPool* pool) {
  Database target(catalog);
  MergeTrace trace;
  Status s = target.MergeFromAll(
      sources, pool,
      [&](PredId pred, TupleView row, size_t src) {
        trace.on_new.emplace_back(
            pred, std::vector<SeqId>(row.begin(), row.end()), src);
        return Status::Ok();
      });
  EXPECT_TRUE(s.ok()) << s.ToString();
  for (PredId pred : target.PredicatesWithRelations()) {
    const Relation* rel = target.Get(pred);
    std::vector<SeqId> scan;
    for (uint32_t pos = 0; pos < rel->size(); ++pos) {
      TupleView row = rel->RowAt(pos);
      scan.insert(scan.end(), row.begin(), row.end());
    }
    trace.scans.push_back(std::move(scan));
  }
  return trace;
}

TEST(RelationShardTest, MergeFromAllIsPoolWidthInvariant) {
  // The same overlapping sources merged serially, with a 2-thread pool
  // and with an 8-thread pool must yield identical callback streams and
  // identical scan orders — the round barrier's determinism contract.
  Catalog catalog;
  PredId p = catalog.GetOrCreate("p", 2).value();
  PredId q = catalog.GetOrCreate("q", 1).value();
  std::vector<std::unique_ptr<Database>> scratches;
  for (size_t src = 0; src < 6; ++src) {
    auto db = std::make_unique<Database>(&catalog);
    for (SeqId v = 0; v < 300; ++v) {
      // Overlapping ranges: most rows appear in several sources.
      SeqId shifted = (v + static_cast<SeqId>(src) * 50) % 400;
      db->Insert(p, std::vector<SeqId>{shifted, v});
      if (v % 3 == 0) {
        SeqId mixed = (v * 7 + static_cast<SeqId>(src)) % 200;
        db->Insert(q, std::vector<SeqId>{mixed});
      }
    }
    scratches.push_back(std::move(db));
  }
  std::vector<const Database*> sources;
  for (const auto& db : scratches) sources.push_back(db.get());

  MergeTrace serial = RunMerge(&catalog, sources, nullptr);
  ThreadPool pool2(2);
  MergeTrace two = RunMerge(&catalog, sources, &pool2);
  ThreadPool pool8(8);
  MergeTrace eight = RunMerge(&catalog, sources, &pool8);

  EXPECT_EQ(serial.on_new, two.on_new);
  EXPECT_EQ(serial.on_new, eight.on_new);
  EXPECT_EQ(serial.scans, two.scans);
  EXPECT_EQ(serial.scans, eight.scans);

  // And it matches the legacy sequential per-source MergeFrom exactly.
  Database legacy(&catalog);
  std::vector<std::tuple<PredId, std::vector<SeqId>, size_t>> legacy_new;
  for (size_t src = 0; src < sources.size(); ++src) {
    Status s = legacy.MergeFrom(
        *sources[src], [&](PredId pred, TupleView row) {
          legacy_new.emplace_back(
              pred, std::vector<SeqId>(row.begin(), row.end()), src);
          return Status::Ok();
        });
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  EXPECT_EQ(serial.on_new, legacy_new);
}

}  // namespace
}  // namespace seqlog
