// End-to-end tests of the Theorem 5 construction (an order-2 acyclic
// transducer network simulating a polynomial-time Turing machine) and
// its Theorem 6 variant (order-3 network, hyperexponential counter,
// elementary-time machines).
#include <gtest/gtest.h>

#include "tm/machines.h"
#include "tm/tm_network.h"
#include "tm/turing.h"
#include "transducer/library.h"

namespace seqlog {
namespace tm {
namespace {

class TmNetworkTest : public ::testing::Test {
 protected:
  SeqId Seq(std::string_view text) {
    return pool_.FromChars(text, &symbols_);
  }
  std::string Render(SeqId id) { return pool_.Render(id, symbols_); }
  std::string RenderSyms(std::span<const Symbol> syms) {
    return pool_.Render(pool_.Intern(syms), symbols_);
  }
  SymbolTable symbols_;
  SequencePool pool_;
};

TEST_F(TmNetworkTest, InitConfigBuildsInitialConfiguration) {
  TuringMachine m = MakeBitFlip(&symbols_);
  auto init = MakeInitConfig(m, "init");
  ASSERT_TRUE(init.ok()) << init.status().ToString();
  EXPECT_EQ((*init)->Order(), 2);
  auto out = (*init)->Apply(std::vector<SeqId>{Seq("0110")}, &pool_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(Render(out.value()), "<q0><|->0110");
}

TEST_F(TmNetworkTest, NetworkHasTheorem5Shape) {
  TuringMachine m = MakeBitFlip(&symbols_);
  auto net = MakeTmNetwork(m, "net", /*squarings=*/1);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  // Order 2 everywhere (Theorem 5's claim); diameter: squarings + driver
  // + decode.
  EXPECT_EQ((*net)->Order(), 2);
  EXPECT_EQ((*net)->Diameter(), 3u);
}

TEST_F(TmNetworkTest, SimulatesBitFlip) {
  TuringMachine m = MakeBitFlip(&symbols_);
  // Linear machine: one squaring (counter n^2 >= n + 2 for n >= 2).
  auto net = MakeTmNetwork(m, "net", /*squarings=*/1);
  ASSERT_TRUE(net.ok());
  for (const char* in : {"01", "111", "0110", "10101", "00000000"}) {
    auto out = (*net)->Apply(std::vector<SeqId>{Seq(in)}, &pool_);
    ASSERT_TRUE(out.ok()) << in << ": " << out.status().ToString();
    std::string expected;
    for (const char* p = in; *p != '\0'; ++p) {
      expected += (*p == '0') ? '1' : '0';
    }
    EXPECT_EQ(Render(out.value()), expected) << in;
  }
}

TEST_F(TmNetworkTest, SimulatesBinaryIncrement) {
  TuringMachine m = MakeBinaryIncrement(&symbols_);
  // The increment machine walks to the right end and back: ~2n+4 steps,
  // which exceeds the n^2 counter of one squaring at n=2 (4 < 8). Two
  // squarings give n^4 >= 2n+4 for all n >= 2, matching how Theorem 5
  // sizes the counter to dominate the machine's running time.
  auto net = MakeTmNetwork(m, "net", /*squarings=*/2);
  ASSERT_TRUE(net.ok());
  struct Case {
    const char* in;
    const char* out;
  } cases[] = {{"01", "10"}, {"0111", "1000"}, {"0000", "0001"},
               {"0101", "0110"}};
  for (const Case& c : cases) {
    auto out = (*net)->Apply(std::vector<SeqId>{Seq(c.in)}, &pool_);
    ASSERT_TRUE(out.ok()) << c.in << ": " << out.status().ToString();
    EXPECT_EQ(Render(out.value()), c.out) << c.in;
  }
}

TEST_F(TmNetworkTest, SimulatesQuadraticUnaryDouble) {
  TuringMachine m = MakeUnaryDouble(&symbols_);
  // Quadratic machine: two squarings (counter n^4 >= c n^2, n >= 3).
  auto net = MakeTmNetwork(m, "net", /*squarings=*/2);
  ASSERT_TRUE(net.ok());
  for (size_t n : {3u, 4u, 5u}) {
    std::string in(n, '1');
    auto direct = RunMachine(m, pool_.View(Seq(in)), 100000);
    ASSERT_TRUE(direct.ok());
    auto out = (*net)->Apply(std::vector<SeqId>{Seq(in)}, &pool_);
    ASSERT_TRUE(out.ok()) << "n=" << n << ": " << out.status().ToString();
    EXPECT_EQ(Render(out.value()), RenderSyms(ExtractOutput(m, *direct)))
        << "n=" << n;
    EXPECT_EQ(Render(out.value()), std::string(2 * n, '1'));
  }
}

TEST_F(TmNetworkTest, BinaryCountUpIsExponentialTime) {
  // Sanity for the Theorem 6 workload: direct steps grow ~ n 2^n.
  TuringMachine m = MakeBinaryCountUp(&symbols_);
  size_t prev_steps = 0;
  for (size_t n : {2u, 3u, 4u, 5u}) {
    auto run = RunMachine(m, pool_.View(Seq(std::string(n, '0'))), 100000);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(RenderSyms(ExtractOutput(m, *run)), std::string(n, '1'));
    EXPECT_GT(run->steps, 2 * prev_steps) << "n=" << n;  // super-2^n-ish
    prev_steps = run->steps;
  }
}

TEST_F(TmNetworkTest, ElementaryNetworkHasTheorem6Shape) {
  TuringMachine m = MakeBinaryCountUp(&symbols_);
  auto net = MakeElementaryTmNetwork(m, "net", /*exponentiations=*/1);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  // The double-exponentiation counter stage is order 3 (Theorem 6);
  // diameter: counter + driver + decode.
  EXPECT_EQ((*net)->Order(), 3);
  EXPECT_EQ((*net)->Diameter(), 3u);
}

TEST_F(TmNetworkTest, ElementaryNetworkSimulatesExponentialMachine) {
  // Theorem 6's construction: the hyperexponential counter lets the
  // order-3 network drive an exponential-time machine to completion —
  // the polynomial counters of Theorem 5 cannot (checked below).
  //
  // n = 2 keeps the run cheap: the driver's step subtransducer must
  // consume the whole counter on every call (Definition 7), so total
  // work is Theta(|counter|^2) — 36^2 here, but ~21609^2 at n = 3.
  TuringMachine m = MakeBinaryCountUp(&symbols_);
  auto net = MakeElementaryTmNetwork(m, "net", /*exponentiations=*/1);
  ASSERT_TRUE(net.ok());
  std::string in(2, '0');
  auto out = (*net)->Apply(std::vector<SeqId>{Seq(in)}, &pool_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(Render(out.value()), "11");
}

TEST_F(TmNetworkTest, ElementaryCounterIsHyperexponential) {
  // The counter stage alone: |out| = (n + |prev|)^2 iterated n times,
  // i.e. 2^2^Theta(n) (the Theorem 4 order-3 lower bound) — already
  // >= 2^2^n at n = 3 where the count-up machine needs ~n 2^n steps.
  auto stage = transducer::MakeDoubleExp("counter");
  ASSERT_TRUE(stage.ok());
  auto len = [&](size_t n) {
    auto out =
        (*stage)->Apply(std::vector<SeqId>{Seq(std::string(n, 'c'))},
                        &pool_);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return out.ok() ? pool_.Length(out.value()) : 0;
  };
  EXPECT_EQ(len(1), 1u);
  EXPECT_EQ(len(2), 36u);
  EXPECT_EQ(len(3), 21609u);  // >= 2^2^3 = 256
}

TEST_F(TmNetworkTest, PolynomialCounterCannotDriveExponentialMachine) {
  // The flip side of Theorem 5 vs 6: with a squared (polynomial)
  // counter the count-up machine runs out of fuel; with n = 4 it needs
  // ~15 increments * ~12 steps >> 4^2 = 16.
  TuringMachine m = MakeBinaryCountUp(&symbols_);
  auto net = MakeTmNetwork(m, "net", /*squarings=*/1);
  ASSERT_TRUE(net.ok());
  std::string in(4, '0');
  auto out = (*net)->Apply(std::vector<SeqId>{Seq(in)}, &pool_);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(Render(out.value()), std::string(4, '1'));
}

TEST_F(TmNetworkTest, UndersizedCounterTruncatesComputation) {
  // With no squarings the counter is just n; the quadratic machine
  // cannot finish and the decoded tape is not the doubled string. This
  // demonstrates why Theorem 5 sizes the counter by the polynomial
  // degree.
  TuringMachine m = MakeUnaryDouble(&symbols_);
  auto net = MakeTmNetwork(m, "net", /*squarings=*/0);
  ASSERT_TRUE(net.ok());
  std::string in(6, '1');
  auto out = (*net)->Apply(std::vector<SeqId>{Seq(in)}, &pool_);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(Render(out.value()), std::string(12, '1'));
}

}  // namespace
}  // namespace tm
}  // namespace seqlog
