// Unit and property tests for the standard machine library, including
// the growth rates claimed in Section 6 / Theorem 4 (square attains n^2,
// the order-3 machine attains doubly-exponential output).
#include <gtest/gtest.h>

#include "sequence/sequence_pool.h"
#include "transducer/library.h"

namespace seqlog {
namespace transducer {
namespace {

class LibraryTest : public ::testing::Test {
 protected:
  SeqId Seq(std::string_view text) {
    return pool_.FromChars(text, &symbols_);
  }
  std::string Render(SeqId id) { return pool_.Render(id, symbols_); }
  Symbol Sym(std::string_view name) { return symbols_.Intern(name); }
  std::vector<Symbol> Alphabet(std::string_view chars) {
    std::vector<Symbol> out;
    for (char c : chars) out.push_back(Sym(std::string_view(&c, 1)));
    return out;
  }
  std::string Apply(const TransducerPtr& t,
                    std::vector<std::string_view> inputs) {
    std::vector<SeqId> ids;
    for (std::string_view in : inputs) ids.push_back(Seq(in));
    Result<SeqId> out = t->Apply(ids, &pool_);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return out.ok() ? Render(out.value()) : "<error>";
  }

  SymbolTable symbols_;
  SequencePool pool_;
};

TEST_F(LibraryTest, AppendTwoInputs) {
  auto t = MakeAppend("app", 2);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(Apply(*t, {"abc", "de"}), "abcde");
  EXPECT_EQ(Apply(*t, {"", "de"}), "de");
  EXPECT_EQ(Apply(*t, {"abc", ""}), "abc");
  EXPECT_EQ(Apply(*t, {"", ""}), "");
}

TEST_F(LibraryTest, AppendThreeInputs) {
  auto t = MakeAppend("app3", 3);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(Apply(*t, {"a", "bb", "ccc"}), "abbccc");
  EXPECT_EQ(Apply(*t, {"", "bb", ""}), "bb");
}

TEST_F(LibraryTest, OrderOneOutputIsBoundedByInput) {
  // Section 6.2: a base transducer's output is at most its total input
  // length.
  auto t = MakeAppend("app", 2);
  ASSERT_TRUE(t.ok());
  for (const char* a : {"", "x", "xy", "xyz"}) {
    for (const char* b : {"", "u", "uv"}) {
      std::string out = Apply(*t, {a, b});
      EXPECT_LE(out.size(), strlen(a) + strlen(b));
    }
  }
}

TEST_F(LibraryTest, ProjectSelectsOneTape) {
  auto t = MakeProject("proj", 3, 1);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(Apply(*t, {"aaa", "bbb", "cc"}), "bbb");
  EXPECT_EQ(Apply(*t, {"", "bbb", ""}), "bbb");
  EXPECT_EQ(Apply(*t, {"aaa", "", "cc"}), "");
  EXPECT_FALSE(MakeProject("bad", 2, 5).ok());
}

TEST_F(LibraryTest, MapAppliesSymbolFunction) {
  std::map<Symbol, Symbol> flip = {{Sym("0"), Sym("1")},
                                   {Sym("1"), Sym("0")}};
  auto t = MakeMap("flip", flip, /*pass_unmapped=*/false);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(Apply(*t, {"0110"}), "1001");
  // Partial: unmapped symbol makes the machine stuck.
  auto out = (*t)->Apply(std::vector<SeqId>{Seq("01x")}, &pool_);
  EXPECT_EQ(out.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(LibraryTest, MapPassUnmappedCopies) {
  std::map<Symbol, Symbol> m = {{Sym("a"), Sym("b")}};
  auto t = MakeMap("m", m, /*pass_unmapped=*/true);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(Apply(*t, {"axay"}), "bxby");
}

TEST_F(LibraryTest, EraseDeletesSymbols) {
  auto t = MakeErase("erase", {Sym("_"), Sym("#")});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(Apply(*t, {"a_b#c__"}), "abc");
  EXPECT_EQ(Apply(*t, {"___"}), "");
  EXPECT_EQ(Apply(*t, {"abc"}), "abc");
}

TEST_F(LibraryTest, PrependSymbol) {
  auto t = MakePrependSymbol("pre", Sym("q"));
  ASSERT_TRUE(t.ok());
  // Inputs: (fuel, content) -> q content.
  EXPECT_EQ(Apply(*t, {"xyz", "abc"}), "qabc");
  EXPECT_EQ(Apply(*t, {"x", ""}), "q");
}

TEST_F(LibraryTest, ReverseReversesAllLengths) {
  auto t = MakeReverse("rev", Alphabet("ab"));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->Order(), 2);
  EXPECT_EQ(Apply(*t, {""}), "");
  EXPECT_EQ(Apply(*t, {"a"}), "a");
  EXPECT_EQ(Apply(*t, {"ab"}), "ba");
  EXPECT_EQ(Apply(*t, {"aabbb"}), "bbbaa");
  EXPECT_EQ(Apply(*t, {"abab"}), "baba");
}

TEST_F(LibraryTest, ReversePropertyDoubleReverseIsIdentity) {
  auto t = MakeReverse("rev", Alphabet("abc"));
  ASSERT_TRUE(t.ok());
  for (const char* s : {"a", "abc", "cab", "aacbc", "ccc"}) {
    SeqId once = (*t)->Apply(std::vector<SeqId>{Seq(s)}, &pool_).value();
    SeqId twice = (*t)->Apply(std::vector<SeqId>{once}, &pool_).value();
    EXPECT_EQ(Render(twice), s);
  }
}

TEST_F(LibraryTest, EchoDoublesSymbols) {
  auto t = MakeEcho("echo", Alphabet("abcd"));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->Order(), 2);
  EXPECT_EQ(Apply(*t, {"abcd"}), "aabbccdd");  // the paper's Example 1.6
  EXPECT_EQ(Apply(*t, {"ab"}), "aabb");
  EXPECT_EQ(Apply(*t, {""}), "");
}

TEST_F(LibraryTest, EchoLengthOneTruncates) {
  // Documented Definition 7 limitation: every invocation's output is
  // bounded by its total input length, so echo("a") = "aa" is not
  // computable by any generalized transducer; the machine halts with the
  // single copy it managed to emit.
  auto t = MakeEcho("echo", Alphabet("ab"));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(Apply(*t, {"a"}), "a");
}

TEST_F(LibraryTest, SquareAttainsQuadraticOutput) {
  // Example 6.1 / Theorem 4: |out| = n^2 for the square machine.
  auto t = MakeSquare("sq");
  ASSERT_TRUE(t.ok());
  for (size_t n : {1u, 2u, 3u, 5u, 8u, 13u}) {
    std::string in(n, 'a');
    EXPECT_EQ(Apply(*t, {in}).size(), n * n) << "n=" << n;
  }
  EXPECT_EQ(Apply(*t, {"ab"}), "abab");
}

TEST_F(LibraryTest, SquareTotalSquaresTheSum) {
  auto t = MakeSquareTotal("sqt");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->Order(), 2);
  for (auto [n1, n2] : std::vector<std::pair<size_t, size_t>>{
           {1, 1}, {2, 3}, {0, 4}, {3, 0}}) {
    std::string a(n1, 'x');
    std::string b(n2, 'y');
    EXPECT_EQ(Apply(*t, {a, b}).size(), (n1 + n2) * (n1 + n2))
        << n1 << "+" << n2;
  }
}

TEST_F(LibraryTest, DoubleExpGrowth) {
  // Theorem 4 order-3 lower bound: |out_i| = (n + |out_{i-1}|)^2.
  auto t = MakeDoubleExp("dx");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->Order(), 3);
  auto expected = [](size_t n) {
    size_t out = 0;
    for (size_t i = 0; i < n; ++i) out = (n + out) * (n + out);
    return out;
  };
  for (size_t n : {1u, 2u, 3u}) {
    std::string in(n, 'a');
    EXPECT_EQ(Apply(*t, {in}).size(), expected(n)) << "n=" << n;
  }
  // n=3 already yields 21609 symbols; n=4 exceeds the default output
  // budget eventually (2.6M is fine, n=5 is ~10^9: budget stops it).
  std::string big(5, 'a');
  auto out = (*t)->Apply(std::vector<SeqId>{Seq(big)}, &pool_);
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(LibraryTest, CodonTranslateGroupsTriples) {
  std::map<std::vector<Symbol>, Symbol> codons;
  codons[{Sym("a"), Sym("b"), Sym("c")}] = Sym("X");
  codons[{Sym("c"), Sym("b"), Sym("a")}] = Sym("Y");
  auto t = MakeCodonTranslate("codon", codons);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(Apply(*t, {"abccba"}), "XY");
  EXPECT_EQ(Apply(*t, {"abcab"}), "X");  // trailing partial codon dropped
  EXPECT_EQ(Apply(*t, {""}), "");
  EXPECT_FALSE(
      MakeCodonTranslate("bad", {{{Sym("a"), Sym("b")}, Sym("X")}}).ok());
}

}  // namespace
}  // namespace transducer
}  // namespace seqlog
