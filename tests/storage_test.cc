// Unit tests for catalog, relations and databases.
#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/database.h"
#include "storage/relation.h"

namespace seqlog {
namespace {

TEST(CatalogTest, GetOrCreateAssignsDenseIds) {
  Catalog c;
  auto p = c.GetOrCreate("p", 2);
  auto q = c.GetOrCreate("q", 1);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(q.ok());
  EXPECT_NE(p.value(), q.value());
  EXPECT_EQ(c.Name(p.value()), "p");
  EXPECT_EQ(c.Arity(p.value()), 2u);
  EXPECT_EQ(c.GetOrCreate("p", 2).value(), p.value());
}

TEST(CatalogTest, ArityConflictIsAnError) {
  Catalog c;
  ASSERT_TRUE(c.GetOrCreate("p", 2).ok());
  EXPECT_FALSE(c.GetOrCreate("p", 3).ok());
}

TEST(CatalogTest, FindMissing) {
  Catalog c;
  EXPECT_EQ(c.Find("nope").status().code(), StatusCode::kNotFound);
}

TEST(RelationTest, InsertDeduplicates) {
  Relation r(2);
  EXPECT_TRUE(r.Insert(std::vector<SeqId>{1, 2}));
  EXPECT_FALSE(r.Insert(std::vector<SeqId>{1, 2}));
  EXPECT_TRUE(r.Insert(std::vector<SeqId>{2, 1}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(std::vector<SeqId>{1, 2}));
  EXPECT_FALSE(r.Contains(std::vector<SeqId>{1, 3}));
}

TEST(RelationTest, ReserveKeepsContentsAndIndexes) {
  Relation r(2);
  r.Insert(std::vector<SeqId>{1, 2});
  r.Reserve(1000);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(std::vector<SeqId>{1, 2}));
  for (SeqId v = 0; v < 500; ++v) {
    r.Insert(std::vector<SeqId>{v, v + 1});
  }
  EXPECT_EQ(r.size(), 500u);  // {1, 2} was re-inserted, deduplicated
  Relation::Candidates rows = r.RowsWithValue(1, 2);
  EXPECT_EQ(rows.size(), 1u);
}

TEST(RelationTest, ReserveDistributesAcrossShards) {
  // Regression for the sharded layout: Reserve(n) must spread the
  // reservation over the shards (~n/kNumShards each plus slack), not
  // size every shard — let alone a single one — for all n rows.
  Relation r(2);
  constexpr size_t kRows = 4096;
  r.Reserve(kRows);
  const size_t per_shard = kRows / Relation::kNumShards;
  size_t total_capacity = 0;
  for (size_t s = 0; s < Relation::ShardCount(); ++s) {
    EXPECT_GE(r.ShardCapacity(s), per_shard);
    // Well under the full amount: distribution, not over-allocation.
    EXPECT_LE(r.ShardCapacity(s), kRows / 2);
    total_capacity += r.ShardCapacity(s);
  }
  EXPECT_GE(total_capacity, kRows);
  // The reservation holds the advertised rows without losing anything.
  for (SeqId i = 0; i < kRows; ++i) {
    ASSERT_TRUE(r.Insert(std::vector<SeqId>{i, i + 1}));
  }
  EXPECT_EQ(r.size(), kRows);
}

TEST(RelationTest, ScanOrderIsInsertionOrder) {
  // Scan positions are global insertion order, independent of which
  // shard a row hashes into — the invariant delta row ranges and
  // snapshot watermarks rely on.
  Relation r(2);
  for (SeqId i = 0; i < 100; ++i) {
    ASSERT_TRUE(r.Insert(std::vector<SeqId>{i * 7 + 1, i}));
  }
  for (uint32_t pos = 0; pos < 100; ++pos) {
    TupleView row = r.RowAt(pos);
    EXPECT_EQ(row[0], pos * 7 + 1);
    EXPECT_EQ(row[1], pos);
    EXPECT_EQ(r.PositionOf(r.IdAt(pos)), pos);
  }
}

TEST(RelationTest, ColumnIndexFindsRows) {
  Relation r(2);
  r.Insert(std::vector<SeqId>{1, 10});
  r.Insert(std::vector<SeqId>{1, 20});
  r.Insert(std::vector<SeqId>{2, 10});
  Relation::Candidates rows = r.RowsWithValue(0, 1);
  EXPECT_EQ(rows.size(), 2u);
  // Rows partition by first column, so a column-0 probe is one shard.
  EXPECT_EQ(rows.num_lists, 1u);
  rows = r.RowsWithValue(1, 10);
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_TRUE(r.RowsWithValue(0, 99).empty());
}

TEST(RelationTest, RowAccess) {
  Relation r(3);
  r.Insert(std::vector<SeqId>{7, 8, 9});
  TupleView row = r.RowAt(0);
  EXPECT_EQ(row[0], 7u);
  EXPECT_EQ(row[2], 9u);
}

TEST(RelationTest, ClearKeepsArity) {
  Relation r(2);
  r.Insert(std::vector<SeqId>{1, 2});
  r.Clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.arity(), 2u);
  EXPECT_TRUE(r.Insert(std::vector<SeqId>{1, 2}));
}

TEST(RelationTest, ZeroArityRelationHoldsOneTuple) {
  Relation r(0);
  EXPECT_TRUE(r.Insert({}));
  EXPECT_FALSE(r.Insert({}));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, ManyInsertsStaysConsistent) {
  Relation r(2);
  for (SeqId i = 0; i < 1000; ++i) {
    ASSERT_TRUE(r.Insert(std::vector<SeqId>{i, i * 2}));
  }
  EXPECT_EQ(r.size(), 1000u);
  for (SeqId i = 0; i < 1000; ++i) {
    ASSERT_TRUE(r.Contains(std::vector<SeqId>{i, i * 2}));
    ASSERT_EQ(r.RowsWithValue(0, i).size(), 1u);
  }
}

TEST(DatabaseTest, InsertAndLookup) {
  Catalog c;
  PredId p = c.GetOrCreate("p", 1).value();
  PredId q = c.GetOrCreate("q", 2).value();
  Database db(&c);
  EXPECT_TRUE(db.Insert(p, std::vector<SeqId>{5}));
  EXPECT_FALSE(db.Insert(p, std::vector<SeqId>{5}));
  EXPECT_TRUE(db.Insert(q, std::vector<SeqId>{5, 6}));
  EXPECT_EQ(db.TotalFacts(), 2u);
  EXPECT_TRUE(db.Contains(p, std::vector<SeqId>{5}));
  EXPECT_FALSE(db.Contains(q, std::vector<SeqId>{6, 5}));
}

TEST(DatabaseTest, GetMissingPredicateIsNull) {
  Catalog c;
  PredId p = c.GetOrCreate("p", 1).value();
  Database db(&c);
  EXPECT_EQ(db.Get(p), nullptr);
  db.GetOrCreate(p);
  EXPECT_NE(db.Get(p), nullptr);
}

TEST(DatabaseTest, UnionWith) {
  Catalog c;
  PredId p = c.GetOrCreate("p", 1).value();
  Database a(&c);
  Database b(&c);
  a.Insert(p, std::vector<SeqId>{1});
  b.Insert(p, std::vector<SeqId>{1});
  b.Insert(p, std::vector<SeqId>{2});
  EXPECT_TRUE(a.UnionWith(b).ok());
  EXPECT_EQ(a.TotalFacts(), 2u);
}

TEST(DatabaseTest, TryInsertChecksArity) {
  Catalog c;
  PredId p = c.GetOrCreate("p", 2).value();
  Database db(&c);
  Result<bool> ok = db.TryInsert(p, std::vector<SeqId>{1, 2});
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok.value());
  Result<bool> dup = db.TryInsert(p, std::vector<SeqId>{1, 2});
  ASSERT_TRUE(dup.ok());
  EXPECT_FALSE(dup.value());

  Result<bool> bad = db.TryInsert(p, std::vector<SeqId>{1});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("arity"), std::string::npos);
  EXPECT_EQ(db.TotalFacts(), 1u);  // malformed tuple was not stored
}

TEST(DatabaseTest, TryInsertChecksPredicateId) {
  Catalog c;
  (void)c.GetOrCreate("p", 1).value();
  Database db(&c);
  Result<bool> bad = db.TryInsert(/*pred=*/7, std::vector<SeqId>{1});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, UnionWithRejectsCrossCatalogArityMismatch) {
  // The same PredId means different predicates in different catalogs;
  // merging used to corrupt relations silently, now it is refused.
  Catalog c1;
  Catalog c2;
  PredId p1 = c1.GetOrCreate("p", 1).value();
  PredId p2 = c2.GetOrCreate("q", 2).value();
  ASSERT_EQ(p1, p2);  // same id, different arity
  Database a(&c1);
  Database b(&c2);
  b.Insert(p2, std::vector<SeqId>{1, 2});
  Status s = a.UnionWith(b);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("arity"), std::string::npos);
}

TEST(DatabaseTest, UnionWithRejectsUnknownPredicateId) {
  Catalog c1;
  Catalog c2;
  PredId q = c2.GetOrCreate("q", 1).value();
  Database a(&c1);  // c1 is empty: q's id does not exist there
  Database b(&c2);
  b.Insert(q, std::vector<SeqId>{1});
  Status s = a.UnionWith(b);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, CloneIsDeepAndIndependent) {
  Catalog c;
  PredId p = c.GetOrCreate("p", 1).value();
  Database db(&c);
  db.Insert(p, std::vector<SeqId>{1});
  std::unique_ptr<Database> copy = db.Clone();
  EXPECT_EQ(copy->TotalFacts(), 1u);
  db.Insert(p, std::vector<SeqId>{2});
  EXPECT_EQ(db.TotalFacts(), 2u);
  EXPECT_EQ(copy->TotalFacts(), 1u);  // snapshot semantics
  EXPECT_TRUE(copy->Contains(p, std::vector<SeqId>{1}));
  EXPECT_FALSE(copy->Contains(p, std::vector<SeqId>{2}));
}

TEST(DatabaseDeathTest, InsertWrongArityDies) {
  Catalog c;
  PredId p = c.GetOrCreate("p", 2).value();
  Database db(&c);
  EXPECT_DEATH(db.Insert(p, std::vector<SeqId>{1}), "arity");
}

TEST(DatabaseDeathTest, InsertUnknownPredicateDies) {
  Catalog c;
  Database db(&c);
  EXPECT_DEATH(db.Insert(/*pred=*/3, std::vector<SeqId>{1}),
               "not in the catalog");
}

}  // namespace
}  // namespace seqlog
